//! Structured execution traces for debugging and visualisation.
//!
//! [`Engine::run_traced`](crate::Engine::run_traced) records every
//! scheduler-visible event of a run — stage boundaries, task placement,
//! MAPE-K pool resizes, incast stalls, executor failures — and
//! [`ExecutionTrace::to_chrome_trace`] exports them in the Chrome
//! trace-event format (`chrome://tracing`, Perfetto).

/// One scheduler-visible event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A stage began.
    StageStarted {
        /// Stage index.
        stage: usize,
        /// Simulated time.
        at: f64,
    },
    /// A stage completed.
    StageFinished {
        /// Stage index.
        stage: usize,
        /// Simulated time.
        at: f64,
    },
    /// A task attempt began executing on an executor.
    TaskStarted {
        /// Global task index within the stage.
        task: usize,
        /// Zero-based attempt number (`> 0` for retries and clones).
        attempt: usize,
        /// Executor (= node).
        executor: usize,
        /// Whether this attempt is a speculative clone of a straggler.
        speculative: bool,
        /// Simulated time.
        at: f64,
    },
    /// A task attempt finished successfully (the winning attempt).
    TaskFinished {
        /// Global task index within the stage.
        task: usize,
        /// Zero-based attempt number that won.
        attempt: usize,
        /// Executor (= node).
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// A task attempt failed — a transient fault or an executor loss.
    TaskFailed {
        /// Global task index within the stage.
        task: usize,
        /// Zero-based attempt number that failed.
        attempt: usize,
        /// Executor (= node) the attempt ran on.
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// The MAPE-K effector resized an executor's pool.
    PoolResized {
        /// Executor (= node).
        executor: usize,
        /// New maximum pool size.
        to: usize,
        /// Simulated time.
        at: f64,
    },
    /// Fault injection killed an executor.
    ExecutorFailed {
        /// Executor (= node).
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// A replacement executor registered.
    ExecutorRecovered {
        /// Executor (= node).
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// The driver blacklisted an executor after repeated task failures.
    ExecutorBlacklisted {
        /// Executor (= node).
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// A speculative clone beat the original attempt to completion.
    SpeculativeWon {
        /// Global task index within the stage.
        task: usize,
        /// The winning (speculative) attempt number.
        attempt: usize,
        /// Executor the winning clone ran on.
        executor: usize,
        /// Simulated time.
        at: f64,
    },
    /// A MAPE-K monitoring interval `I_j` closed on an executor: the
    /// sample behind the next pool-size decision. Exported as a `ζ_j`
    /// counter track.
    IntervalClosed {
        /// Executor (= node).
        executor: usize,
        /// Thread count the interval ran with.
        threads: usize,
        /// Congestion index `ζ_j` measured over the interval.
        zeta: f64,
        /// Simulated time.
        at: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match *self {
            TraceEvent::StageStarted { at, .. }
            | TraceEvent::StageFinished { at, .. }
            | TraceEvent::TaskStarted { at, .. }
            | TraceEvent::TaskFinished { at, .. }
            | TraceEvent::TaskFailed { at, .. }
            | TraceEvent::PoolResized { at, .. }
            | TraceEvent::ExecutorFailed { at, .. }
            | TraceEvent::ExecutorRecovered { at, .. }
            | TraceEvent::ExecutorBlacklisted { at, .. }
            | TraceEvent::SpeculativeWon { at, .. }
            | TraceEvent::IntervalClosed { at, .. } => at,
        }
    }
}

/// The recorded event stream of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|e| event.at() >= e.at() - 1e-9),
            "trace must be chronological"
        );
        self.events.push(event);
    }

    /// All events, in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pool-resize events of one executor, as `(time, new_size)`.
    pub fn resizes_for(&self, executor: usize) -> Vec<(f64, usize)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::PoolResized {
                    executor: ex,
                    to,
                    at,
                } if ex == executor => Some((at, to)),
                _ => None,
            })
            .collect()
    }

    /// Tasks started per executor.
    pub fn tasks_started_per_executor(&self, nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; nodes];
        for e in &self.events {
            if let TraceEvent::TaskStarted { executor, .. } = *e {
                counts[executor] += 1;
            }
        }
        counts
    }

    /// Task ids that ran more than one attempt (retries or clones),
    /// sorted and deduplicated.
    pub fn retried_tasks(&self) -> Vec<usize> {
        let mut tasks: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::TaskStarted { task, attempt, .. } if attempt > 0 => Some(task),
                _ => None,
            })
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
    }

    /// Number of failed task attempts in the trace.
    pub fn failed_attempts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TaskFailed { .. }))
            .count()
    }

    /// Number of speculative wins in the trace.
    pub fn speculative_wins(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SpeculativeWon { .. }))
            .count()
    }

    /// Executors the driver blacklisted, in order.
    pub fn blacklisted_executors(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::ExecutorBlacklisted { executor, .. } => Some(executor),
                _ => None,
            })
            .collect()
    }

    /// Exports the trace in the Chrome trace-event JSON format.
    ///
    /// Stages become duration events on a "driver" row; tasks become
    /// duration events per executor row; resizes and failures become
    /// instant events; pool sizes and `ζ_j` become counter tracks
    /// (`ph:"C"`). Open the output in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut entries: Vec<String> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            append_chrome_entries(e, &mut entries);
        }
        format!("[{}]", entries.join(","))
    }
}

/// Appends the Chrome trace-event JSON object(s) for one [`TraceEvent`] to
/// `entries`.
///
/// Public so other runtimes (the live flight recorder) can serialize the
/// same event vocabulary identically — a merged sim/live overlay only
/// works if both sides agree on names, rows and phases. One event can
/// expand to several entries: a `TaskFailed` closes its duration slice
/// before marking the failure, and a `PoolResized` also feeds the
/// per-executor `pool-size` counter track.
pub fn append_chrome_entries(event: &TraceEvent, entries: &mut Vec<String>) {
    fn esc(name: &str) -> String {
        name.replace('"', "'")
    }
    let us = |t: f64| (t * 1e6).round() as i64;
    let entry = match *event {
        TraceEvent::StageStarted { stage, at } => format!(
            r#"{{"name":"stage-{stage}","ph":"B","ts":{},"pid":0,"tid":0}}"#,
            us(at)
        ),
        TraceEvent::StageFinished { stage, at } => format!(
            r#"{{"name":"stage-{stage}","ph":"E","ts":{},"pid":0,"tid":0}}"#,
            us(at)
        ),
        TraceEvent::TaskStarted {
            task,
            attempt,
            executor,
            at,
            ..
        } => format!(
            r#"{{"name":"task-{task}.{attempt}","ph":"B","ts":{},"pid":1,"tid":{executor}}}"#,
            us(at)
        ),
        TraceEvent::TaskFinished {
            task,
            attempt,
            executor,
            at,
        } => format!(
            r#"{{"name":"task-{task}.{attempt}","ph":"E","ts":{},"pid":1,"tid":{executor}}}"#,
            us(at)
        ),
        TraceEvent::TaskFailed {
            task,
            attempt,
            executor,
            at,
        } => {
            // Close the attempt's duration slice, then mark the
            // failure as an instant.
            entries.push(format!(
                r#"{{"name":"task-{task}.{attempt}","ph":"E","ts":{},"pid":1,"tid":{executor}}}"#,
                us(at)
            ));
            format!(
                r#"{{"name":"task-failed","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"t"}}"#,
                us(at)
            )
        }
        TraceEvent::PoolResized { executor, to, at } => {
            // The counter track gives Perfetto a step plot of the pool
            // size; the instant keeps the event visible on the row.
            entries.push(format!(
                r#"{{"name":"pool-size-exec{executor}","ph":"C","ts":{},"pid":1,"tid":{executor},"args":{{"size":{to}}}}}"#,
                us(at)
            ));
            format!(
                r#"{{"name":"{}","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"t"}}"#,
                esc(&format!("resize->{to}")),
                us(at)
            )
        }
        TraceEvent::ExecutorFailed { executor, at } => format!(
            r#"{{"name":"executor-failed","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"p"}}"#,
            us(at)
        ),
        TraceEvent::ExecutorRecovered { executor, at } => format!(
            r#"{{"name":"executor-recovered","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"p"}}"#,
            us(at)
        ),
        TraceEvent::ExecutorBlacklisted { executor, at } => format!(
            r#"{{"name":"executor-blacklisted","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"p"}}"#,
            us(at)
        ),
        TraceEvent::SpeculativeWon {
            task,
            attempt,
            executor,
            at,
        } => format!(
            r#"{{"name":"{}","ph":"i","ts":{},"pid":1,"tid":{executor},"s":"t"}}"#,
            esc(&format!("speculative-won-task-{task}.{attempt}")),
            us(at)
        ),
        TraceEvent::IntervalClosed {
            executor, zeta, at, ..
        } => {
            let zeta = if zeta.is_finite() { zeta } else { 0.0 };
            format!(
                r#"{{"name":"zeta-exec{executor}","ph":"C","ts":{},"pid":1,"tid":{executor},"args":{{"zeta":{zeta:?}}}}}"#,
                us(at)
            )
        }
    };
    entries.push(entry);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record(TraceEvent::StageStarted { stage: 0, at: 0.0 });
        t.record(TraceEvent::TaskStarted {
            task: 0,
            attempt: 0,
            executor: 1,
            speculative: false,
            at: 0.5,
        });
        t.record(TraceEvent::PoolResized {
            executor: 1,
            to: 4,
            at: 1.0,
        });
        t.record(TraceEvent::TaskFinished {
            task: 0,
            attempt: 0,
            executor: 1,
            at: 2.0,
        });
        t.record(TraceEvent::StageFinished { stage: 0, at: 2.0 });
        t
    }

    #[test]
    fn records_in_order() {
        let t = sample();
        assert_eq!(t.len(), 5);
        for pair in t.events().windows(2) {
            assert!(pair[1].at() >= pair[0].at());
        }
    }

    #[test]
    fn resize_query() {
        let t = sample();
        assert_eq!(t.resizes_for(1), vec![(1.0, 4)]);
        assert!(t.resizes_for(0).is_empty());
    }

    #[test]
    fn task_counts_per_executor() {
        let t = sample();
        assert_eq!(t.tasks_started_per_executor(3), vec![0, 1, 0]);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_array() {
        let json = sample().to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // Balanced braces (crude structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_trace_exports_empty_array() {
        assert_eq!(ExecutionTrace::new().to_chrome_trace(), "[]");
    }

    #[test]
    fn pool_resize_emits_a_counter_track_sample() {
        let json = sample().to_chrome_trace();
        assert!(json.contains(r#""name":"pool-size-exec1","ph":"C""#));
        assert!(json.contains(r#""args":{"size":4}"#));
    }

    #[test]
    fn interval_closed_emits_a_zeta_counter_sample() {
        let mut t = ExecutionTrace::new();
        t.record(TraceEvent::IntervalClosed {
            executor: 2,
            threads: 4,
            zeta: 0.125,
            at: 1.5,
        });
        let json = t.to_chrome_trace();
        assert!(json.contains(r#""name":"zeta-exec2","ph":"C""#));
        assert!(json.contains(r#""args":{"zeta":0.125}"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn failure_queries_surface_retries_and_blacklists() {
        let mut t = ExecutionTrace::new();
        t.record(TraceEvent::TaskStarted {
            task: 3,
            attempt: 0,
            executor: 0,
            speculative: false,
            at: 0.0,
        });
        t.record(TraceEvent::TaskFailed {
            task: 3,
            attempt: 0,
            executor: 0,
            at: 1.0,
        });
        t.record(TraceEvent::TaskStarted {
            task: 3,
            attempt: 1,
            executor: 1,
            speculative: false,
            at: 2.0,
        });
        t.record(TraceEvent::ExecutorBlacklisted {
            executor: 0,
            at: 3.0,
        });
        t.record(TraceEvent::TaskStarted {
            task: 5,
            attempt: 1,
            executor: 2,
            speculative: true,
            at: 4.0,
        });
        t.record(TraceEvent::SpeculativeWon {
            task: 5,
            attempt: 1,
            executor: 2,
            at: 6.0,
        });
        assert_eq!(t.retried_tasks(), vec![3, 5]);
        assert_eq!(t.failed_attempts(), 1);
        assert_eq!(t.speculative_wins(), 1);
        assert_eq!(t.blacklisted_executors(), vec![0]);
        // The failed attempt closes its duration slice in the export.
        let json = t.to_chrome_trace();
        assert!(json.contains("task-3.0"));
        assert!(json.contains("task-failed"));
        assert!(json.contains("executor-blacklisted"));
    }
}
