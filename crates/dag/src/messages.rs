//! The driver↔executor messaging protocol.
//!
//! Spark's scheduler keeps its own registry of how many cores each
//! executor was launched with and how many are free; the paper extends the
//! protocol with a message that lets executors report pool-size changes so
//! the scheduler's view stays consistent (§5.4). Messages travel through
//! the simulated RPC fabric with a configurable one-way latency; the live
//! runtime (`sae-live`) carries the same values over real TCP using the
//! hand-rolled frame format in [`crate::codec`].

use serde::{Deserialize, Serialize};

/// A message on the driver↔executor channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Driver → executor: run `task`.
    AssignTask {
        /// Global task index.
        task: usize,
        /// Destination executor.
        executor: usize,
    },
    /// Executor → driver: "my pool now runs at most `size` tasks" — the
    /// protocol extension introduced by the paper.
    PoolSizeChanged {
        /// Reporting executor.
        executor: usize,
        /// New maximum pool size.
        size: usize,
    },
    /// Executor → driver: liveness beacon. Fire-and-forget: unlike the
    /// other messages it may be dropped by a fault plan, and a silence
    /// longer than the heartbeat timeout is how the driver *detects*
    /// executor loss (there is no omniscient failure signal).
    Heartbeat {
        /// Reporting executor.
        executor: usize,
    },
    /// Executor → driver: a task attempt failed (transient error). The
    /// driver decides between retry with backoff, blacklisting the
    /// executor, and aborting the job.
    TaskFailed {
        /// Global task index within the stage.
        task: usize,
        /// Executor the attempt ran on.
        executor: usize,
        /// Zero-based attempt number that failed.
        attempt: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_comparable_and_copy() {
        let a = Message::AssignTask {
            task: 1,
            executor: 2,
        };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(
            a,
            Message::PoolSizeChanged {
                executor: 2,
                size: 8
            }
        );
    }

    #[test]
    fn failure_protocol_messages_carry_attempt() {
        let f = Message::TaskFailed {
            task: 3,
            executor: 1,
            attempt: 2,
        };
        assert_eq!(f, f);
        assert_ne!(f, Message::Heartbeat { executor: 1 });
    }
}
