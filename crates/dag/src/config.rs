//! Engine configuration and the functional-parameter catalog (Table 1).

use sae_net::FabricConfig;
use sae_cluster::NodeSpec;
use sae_core::ThreadPolicy;
use sae_storage::VariabilityConfig;

/// Full configuration of a simulated cluster + engine run.
///
/// Mirrors the launch-time configuration surface of Spark that the paper
/// criticises: everything here is fixed before the job starts — except the
/// executor thread count, which [`ThreadPolicy::Adaptive`] frees.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker nodes (one executor per node, as in the paper).
    pub nodes: usize,
    /// Per-node hardware.
    pub node_spec: NodeSpec,
    /// Network fabric.
    pub fabric: FabricConfig,
    /// Per-node disk speed variability.
    pub variability: VariabilityConfig,
    /// DFS block size in MB (HDFS default: 128).
    pub block_size_mb: u64,
    /// DFS replication factor for input files. The paper sets this to the
    /// node count so every read is node-local.
    pub input_replication: usize,
    /// DFS replication factor for job output files.
    pub output_replication: usize,
    /// Number of reduce partitions per cluster core for shuffle stages.
    pub shuffle_partitions_per_core: f64,
    /// Chunks each task's work is split into for CPU/I/O interleaving.
    pub chunks_per_task: usize,
    /// Maximum concurrent fetch sources per reduce task
    /// (`spark.reducer.maxReqsInFlight` analogue). Fan-in to each serving
    /// disk grows with `min(nodes, this)` — the mechanism behind the poor
    /// default scaling of Figure 9.
    pub fetch_parallelism: usize,
    /// Incoming fetch requests a node's serve path absorbs without incast
    /// stalls. Fan-in above this (≈ cluster reducers × fetch parallelism /
    /// nodes) triggers TCP-incast-style retransmission stalls — the
    /// mechanism behind the poor default scaling of Figure 9.
    pub incast_free_requests: usize,
    /// Base incast stall in seconds; the stall grows as
    /// `base · ((pressure - free)/16)^1.5`.
    pub incast_stall_base: f64,
    /// One-way driver↔executor RPC latency in seconds.
    pub rpc_latency: f64,
    /// Metrics sampling interval in seconds (the paper samples at 1 Hz).
    pub sample_interval: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional fault injection: kill one executor at a point in time and
    /// bring it back after a downtime. Its running tasks are lost and
    /// rescheduled, as in Spark's executor-loss handling.
    pub executor_failure: Option<ExecutorFailure>,
}

/// A scheduled executor failure (fault injection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorFailure {
    /// Executor (= node) to kill.
    pub executor: usize,
    /// Simulated time at which it dies.
    pub at: f64,
    /// Seconds until a replacement executor registers.
    pub downtime: f64,
}

impl EngineConfig {
    /// The paper's primary setup: 4 DAS-5 nodes with HDDs (§6.1).
    pub fn four_node_hdd() -> Self {
        Self {
            nodes: 4,
            node_spec: NodeSpec::das5_hdd(),
            fabric: FabricConfig::das5(),
            variability: VariabilityConfig::homogeneous(),
            block_size_mb: 128,
            input_replication: 4,
            output_replication: 1,
            shuffle_partitions_per_core: 2.5,
            chunks_per_task: 4,
            fetch_parallelism: 8,
            incast_free_requests: 64,
            incast_stall_base: 0.25,
            rpc_latency: 0.0005,
            sample_interval: 1.0,
            seed: 42,
            executor_failure: None,
        }
    }

    /// The SSD variant of §6.3.
    pub fn four_node_ssd() -> Self {
        Self {
            node_spec: NodeSpec::das5_ssd(),
            ..Self::four_node_hdd()
        }
    }

    /// The 16-node scalability setup of Figure 9 (input replication stays
    /// at 4, matching HDFS practice at that scale).
    pub fn sixteen_node_hdd() -> Self {
        Self {
            nodes: 16,
            input_replication: 4,
            ..Self::four_node_hdd()
        }
    }

    /// Scales node count while keeping everything else.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        self.nodes = nodes;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables DAS-5-style per-node variability.
    pub fn with_variability(mut self, variability: VariabilityConfig) -> Self {
        self.variability = variability;
        self
    }

    /// Total virtual cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node_spec.cores
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (zero nodes/chunks, non-positive
    /// intervals, zero replication).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.block_size_mb > 0, "block size must be positive");
        assert!(self.input_replication > 0, "input replication must be > 0");
        assert!(
            self.output_replication > 0,
            "output replication must be > 0"
        );
        assert!(self.chunks_per_task > 0, "chunks per task must be > 0");
        assert!(self.fetch_parallelism > 0, "fetch parallelism must be > 0");
        assert!(
            self.shuffle_partitions_per_core > 0.0,
            "shuffle partitions per core must be positive"
        );
        assert!(self.rpc_latency >= 0.0, "rpc latency must be >= 0");
        assert!(self.sample_interval > 0.0, "sample interval must be > 0");
        if let Some(failure) = self.executor_failure {
            assert!(
                failure.executor < self.nodes,
                "failure targets executor {} of {}",
                failure.executor,
                self.nodes
            );
            assert!(failure.at >= 0.0 && failure.downtime >= 0.0);
        }
    }

    /// Default thread-pool size per executor (one per virtual core).
    pub fn default_threads(&self) -> usize {
        self.node_spec.cores
    }

    /// A default adaptive policy for this configuration (`c_min = 2`,
    /// `c_max` = cores).
    pub fn adaptive_policy(&self) -> ThreadPolicy {
        ThreadPolicy::Adaptive(sae_core::MapeConfig::new(2, self.node_spec.cores))
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::four_node_hdd()
    }
}

/// Functional categories of engine parameters, matching Table 1's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConfigCategory {
    /// Shuffle behaviour.
    Shuffle,
    /// Compression and serialization.
    CompressionSerialization,
    /// Memory management.
    MemoryManagement,
    /// Execution behaviour.
    ExecutionBehavior,
    /// Networking.
    Network,
    /// Scheduling.
    Scheduling,
    /// Dynamic allocation.
    DynamicAllocation,
}

impl ConfigCategory {
    /// Human-readable name as printed in Table 1.
    pub fn display_name(self) -> &'static str {
        match self {
            ConfigCategory::Shuffle => "Shuffle",
            ConfigCategory::CompressionSerialization => "Compression and Serialization",
            ConfigCategory::MemoryManagement => "Memory Management",
            ConfigCategory::ExecutionBehavior => "Execution Behavior",
            ConfigCategory::Network => "Network",
            ConfigCategory::Scheduling => "Scheduling",
            ConfigCategory::DynamicAllocation => "Dynamic Allocation",
        }
    }

    /// All categories, in Table 1 order.
    pub const ALL: [ConfigCategory; 7] = [
        ConfigCategory::Shuffle,
        ConfigCategory::CompressionSerialization,
        ConfigCategory::MemoryManagement,
        ConfigCategory::ExecutionBehavior,
        ConfigCategory::Network,
        ConfigCategory::Scheduling,
        ConfigCategory::DynamicAllocation,
    ];
}

/// One named, documented parameter in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigParameter {
    /// Dotted parameter name (`"sae.shuffle.partitionsPerCore"`).
    pub name: &'static str,
    /// Category for Table 1-style grouping.
    pub category: ConfigCategory,
    /// Whether the parameter directly affects performance.
    pub performance_relevant: bool,
}

/// A catalog of functional parameters, reproducing Table 1.
///
/// Two catalogs are provided: [`ParameterCatalog::spark_2_4_2`] is the
/// reference data the paper counted (117 parameters across 7 categories),
/// and [`ParameterCatalog::engine`] enumerates this engine's own tunables
/// to show the same disease in miniature.
#[derive(Debug, Clone, Default)]
pub struct ParameterCatalog {
    parameters: Vec<ConfigParameter>,
}

impl ParameterCatalog {
    /// The Spark 2.4.2 functional-parameter counts from Table 1.
    ///
    /// Parameter names are not reproduced (the paper only reports counts);
    /// entries are synthesised as `spark.<category>.pN`.
    pub fn spark_2_4_2() -> Self {
        fn synth(category: ConfigCategory, count: usize, names: &'static [&'static str]) -> Vec<ConfigParameter> {
            (0..count)
                .map(|i| ConfigParameter {
                    name: names.get(i).copied().unwrap_or("spark.parameter"),
                    category,
                    performance_relevant: true,
                })
                .collect()
        }
        let mut parameters = Vec::new();
        parameters.extend(synth(ConfigCategory::Shuffle, 19, &["spark.shuffle.compress", "spark.shuffle.file.buffer", "spark.reducer.maxSizeInFlight"]));
        parameters.extend(synth(ConfigCategory::CompressionSerialization, 16, &["spark.io.compression.codec", "spark.serializer"]));
        parameters.extend(synth(ConfigCategory::MemoryManagement, 14, &["spark.memory.fraction", "spark.memory.storageFraction"]));
        parameters.extend(synth(ConfigCategory::ExecutionBehavior, 14, &["spark.executor.cores", "spark.default.parallelism"]));
        parameters.extend(synth(ConfigCategory::Network, 13, &["spark.network.timeout", "spark.rpc.askTimeout"]));
        parameters.extend(synth(ConfigCategory::Scheduling, 32, &["spark.locality.wait", "spark.speculation", "spark.task.cpus"]));
        parameters.extend(synth(ConfigCategory::DynamicAllocation, 9, &["spark.dynamicAllocation.enabled"]));
        Self { parameters }
    }

    /// This engine's own tunables, categorised the same way.
    pub fn engine() -> Self {
        use ConfigCategory::*;
        let p = |name, category| ConfigParameter {
            name,
            category,
            performance_relevant: true,
        };
        Self {
            parameters: vec![
                p("sae.shuffle.partitionsPerCore", Shuffle),
                p("sae.shuffle.fetchParallelism", Shuffle),
                p("sae.shuffle.fragmentPenalty", Shuffle),
                p("sae.storage.blockSizeMb", MemoryManagement),
                p("sae.storage.inputReplication", MemoryManagement),
                p("sae.storage.outputReplication", MemoryManagement),
                p("sae.executor.chunksPerTask", ExecutionBehavior),
                p("sae.executor.threads", ExecutionBehavior),
                p("sae.executor.adaptive.cMin", ExecutionBehavior),
                p("sae.executor.adaptive.cMax", ExecutionBehavior),
                p("sae.network.rpcLatency", Network),
                p("sae.network.ingressBandwidth", Network),
                p("sae.network.perStreamCap", Network),
                p("sae.scheduler.sampleInterval", Scheduling),
                p("sae.scheduler.localityPreferred", Scheduling),
                p("sae.cluster.nodes", Scheduling),
                p("sae.cluster.seed", Scheduling),
            ],
        }
    }

    /// Number of parameters in `category`.
    pub fn count(&self, category: ConfigCategory) -> usize {
        self.parameters
            .iter()
            .filter(|p| p.category == category)
            .count()
    }

    /// Total parameter count.
    pub fn total(&self) -> usize {
        self.parameters.len()
    }

    /// Iterates all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &ConfigParameter> {
        self.parameters.iter()
    }

    /// Renders Table 1: `(category name, count)` rows plus the total.
    pub fn table(&self) -> Vec<(String, usize)> {
        let mut rows: Vec<(String, usize)> = ConfigCategory::ALL
            .iter()
            .map(|&c| (c.display_name().to_owned(), self.count(c)))
            .collect();
        rows.push(("Total".to_owned(), self.total()));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_catalog_matches_table_1() {
        let cat = ParameterCatalog::spark_2_4_2();
        assert_eq!(cat.count(ConfigCategory::Shuffle), 19);
        assert_eq!(cat.count(ConfigCategory::CompressionSerialization), 16);
        assert_eq!(cat.count(ConfigCategory::MemoryManagement), 14);
        assert_eq!(cat.count(ConfigCategory::ExecutionBehavior), 14);
        assert_eq!(cat.count(ConfigCategory::Network), 13);
        assert_eq!(cat.count(ConfigCategory::Scheduling), 32);
        assert_eq!(cat.count(ConfigCategory::DynamicAllocation), 9);
        assert_eq!(cat.total(), 117);
    }

    #[test]
    fn table_rows_end_with_total() {
        let rows = ParameterCatalog::spark_2_4_2().table();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.last().unwrap(), &("Total".to_owned(), 117));
    }

    #[test]
    fn engine_catalog_is_nonempty_and_categorised() {
        let cat = ParameterCatalog::engine();
        assert!(cat.total() >= 15);
        assert!(cat.count(ConfigCategory::Shuffle) >= 2);
    }

    #[test]
    fn four_node_config_is_paper_setup() {
        let cfg = EngineConfig::four_node_hdd();
        cfg.validate();
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.total_cores(), 128);
        assert_eq!(cfg.default_threads(), 32);
        assert_eq!(cfg.input_replication, 4);
    }

    #[test]
    fn sixteen_node_config_scales() {
        let cfg = EngineConfig::sixteen_node_hdd();
        cfg.validate();
        assert_eq!(cfg.nodes, 16);
        assert_eq!(cfg.total_cores(), 512);
    }

    #[test]
    fn ssd_config_uses_ssd() {
        assert_eq!(
            EngineConfig::four_node_ssd().node_spec.disk.name(),
            "ssd-sata"
        );
    }

    #[test]
    fn adaptive_policy_bounds_match_cores() {
        match EngineConfig::four_node_hdd().adaptive_policy() {
            ThreadPolicy::Adaptive(cfg) => {
                assert_eq!(cfg.c_min, 2);
                assert_eq!(cfg.c_max, 32);
            }
            _ => panic!("expected adaptive"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        EngineConfig::four_node_hdd().with_nodes(0).validate();
    }
}
