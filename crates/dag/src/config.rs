//! Engine configuration and the functional-parameter catalog (Table 1).

use sae_cluster::NodeSpec;
use sae_core::ThreadPolicy;
use sae_net::FabricConfig;
use sae_storage::VariabilityConfig;

/// Full configuration of a simulated cluster + engine run.
///
/// Mirrors the launch-time configuration surface of Spark that the paper
/// criticises: everything here is fixed before the job starts — except the
/// executor thread count, which [`ThreadPolicy::Adaptive`] frees.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker nodes (one executor per node, as in the paper).
    pub nodes: usize,
    /// Per-node hardware.
    pub node_spec: NodeSpec,
    /// Network fabric.
    pub fabric: FabricConfig,
    /// Per-node disk speed variability.
    pub variability: VariabilityConfig,
    /// DFS block size in MB (HDFS default: 128).
    pub block_size_mb: u64,
    /// DFS replication factor for input files. The paper sets this to the
    /// node count so every read is node-local.
    pub input_replication: usize,
    /// DFS replication factor for job output files.
    pub output_replication: usize,
    /// Number of reduce partitions per cluster core for shuffle stages.
    pub shuffle_partitions_per_core: f64,
    /// Chunks each task's work is split into for CPU/I/O interleaving.
    pub chunks_per_task: usize,
    /// Maximum concurrent fetch sources per reduce task
    /// (`spark.reducer.maxReqsInFlight` analogue). Fan-in to each serving
    /// disk grows with `min(nodes, this)` — the mechanism behind the poor
    /// default scaling of Figure 9.
    pub fetch_parallelism: usize,
    /// Incoming fetch requests a node's serve path absorbs without incast
    /// stalls. Fan-in above this (≈ cluster reducers × fetch parallelism /
    /// nodes) triggers TCP-incast-style retransmission stalls — the
    /// mechanism behind the poor default scaling of Figure 9.
    pub incast_free_requests: usize,
    /// Base incast stall in seconds; the stall grows as
    /// `base · ((pressure - free)/16)^1.5`.
    pub incast_stall_base: f64,
    /// One-way driver↔executor RPC latency in seconds.
    pub rpc_latency: f64,
    /// Metrics sampling interval in seconds (the paper samples at 1 Hz).
    pub sample_interval: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional fault injection: a deterministic, seeded schedule of
    /// executor crashes, transient task failures, node slowdowns, and
    /// heartbeat loss. `None` runs fault-free (and bit-identical to a run
    /// without the fault subsystem).
    pub fault_plan: Option<FaultPlan>,
    /// Driver-side fault-tolerance knobs: retry budget, backoff,
    /// heartbeat timing, blacklisting, and speculation.
    pub fault_tolerance: FaultToleranceConfig,
    /// Route driver scheduling through the pre-index O(pending)-scan
    /// reference ([`crate::sched::ReferenceQueue`]) instead of the indexed
    /// queue — for equivalence tests and benchmarks only, which is why the
    /// field exists only under the `reference-impl` feature (or `cfg(test)`).
    /// The `SAE_REFERENCE_SCHEDULER` environment variable forces the same
    /// switch for runs whose configs are built out of reach (e.g. the fig2
    /// sweep).
    #[cfg(any(test, feature = "reference-impl"))]
    pub reference_scheduler: bool,
}

/// One scheduled executor crash inside a [`FaultPlan`].
///
/// The process dies at `at`: every flow it drives stops, its heartbeats
/// cease, and the driver only learns of the loss when the heartbeat
/// timeout elapses. A replacement executor registers `downtime` seconds
/// after the crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorCrash {
    /// Executor (= node) to kill.
    pub executor: usize,
    /// Simulated time at which it dies.
    pub at: f64,
    /// Seconds until a replacement executor registers. Must be positive —
    /// an instant restart would race its own failure detection.
    pub downtime: f64,
}

/// A temporary node slowdown inside a [`FaultPlan`]: antagonist disk
/// traffic (a co-located tenant, a RAID scrub) steals bandwidth from the
/// node's disk between `at` and `at + duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSlowdown {
    /// Node whose disk slows down.
    pub node: usize,
    /// Simulated start time.
    pub at: f64,
    /// Seconds the slowdown lasts.
    pub duration: f64,
    /// Antagonist intensity in `(0, 1]`: the fraction of fair-share disk
    /// streams the antagonist contends with (1.0 ≈ one full extra tenant
    /// per active stream budget).
    pub severity: f64,
}

/// Which driver↔executor direction a [`WireFault`] applies to.
///
/// Asymmetric partitions are the interesting failure class: an executor
/// whose frames reach the driver while the driver's frames never arrive
/// (or vice versa) exercises a different recovery path than a clean
/// two-way cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDirection {
    /// Executor → driver frames only (heartbeats, `TaskFinished`).
    ToDriver,
    /// Driver → executor frames only (`AssignTask`, `StageStart`).
    ToExecutor,
    /// Both directions.
    Both,
}

impl WireDirection {
    /// Whether a frame travelling executor→driver is covered.
    pub fn covers_to_driver(self) -> bool {
        matches!(self, WireDirection::ToDriver | WireDirection::Both)
    }

    /// Whether a frame travelling driver→executor is covered.
    pub fn covers_to_executor(self) -> bool {
        matches!(self, WireDirection::ToExecutor | WireDirection::Both)
    }
}

/// What a [`WireFault`] does to covered frames while its window is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFaultKind {
    /// Hold each frame for `seconds` before forwarding it.
    Delay {
        /// Per-frame extra latency in (wall-clock) seconds.
        seconds: f64,
    },
    /// Cap the link at `bytes_per_sec`: each frame is forwarded after a
    /// pause proportional to its length.
    Throttle {
        /// Link bandwidth floor in bytes per second.
        bytes_per_sec: f64,
    },
    /// Discard each covered frame independently with `probability`.
    Drop {
        /// Per-frame drop probability in `[0, 1)`.
        probability: f64,
    },
    /// Forward each covered frame twice with `probability` — the protocol
    /// must treat every frame as at-least-once.
    Duplicate {
        /// Per-frame duplication probability in `[0, 1)`.
        probability: f64,
    },
    /// Tear the connection down mid-frame: forward a partial frame, then
    /// reset both directions. The executor must reconnect and re-register.
    Reset,
    /// Discard every covered frame for the window — a network partition.
    Partition,
}

impl WireFaultKind {
    /// Stable lower-case label used in traces, metrics, and logs.
    pub fn label(&self) -> &'static str {
        match self {
            WireFaultKind::Delay { .. } => "delay",
            WireFaultKind::Throttle { .. } => "throttle",
            WireFaultKind::Drop { .. } => "drop",
            WireFaultKind::Duplicate { .. } => "duplicate",
            WireFaultKind::Reset => "reset",
            WireFaultKind::Partition => "partition",
        }
    }
}

/// One scheduled wire-level fault inside a [`FaultPlan`], applied by the
/// live runtime's nemesis proxy to frames crossing the driver↔executor
/// link of one executor.
///
/// The simulator has no byte-level wire, so it validates these entries but
/// does not apply them; its own `message_delay_max` / `heartbeat_loss`
/// fields are the virtual-time analogues. Times are seconds since the job
/// epoch (virtual seconds in the sim, wall seconds live).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFault {
    /// Executor whose link misbehaves.
    pub executor: usize,
    /// Window start, in seconds since the job epoch.
    pub at: f64,
    /// Window length in seconds.
    pub duration: f64,
    /// Which direction(s) of the link are covered.
    pub direction: WireDirection,
    /// What happens to covered frames.
    pub kind: WireFaultKind,
}

/// One scheduled spill-file corruption inside a [`FaultPlan`]: the bytes
/// of `task`'s spill file are flipped once the file exists and `at` has
/// passed, exercising the checksum → retryable-failure → lineage-recovery
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFault {
    /// Task whose spill file is corrupted.
    pub task: usize,
    /// Earliest time the corruption lands, in seconds since the job epoch.
    pub at: f64,
}

/// A deterministic, seeded schedule of faults injected into a run.
///
/// All randomness (which attempts fail transiently, which heartbeats are
/// lost, message delays) is drawn from a dedicated RNG stream seeded by
/// [`FaultPlan::seed`], so the same plan over the same job yields a
/// bit-identical run — and the main engine RNG is never touched, so a run
/// with an empty plan is bit-identical to a run with no plan at all.
///
/// One plan drives both runtimes: the simulator applies `crashes`,
/// `slowdowns` and the probabilistic fields in virtual time, while the
/// live runtime applies `crashes` (kill + respawn after `downtime`),
/// `wire` (through the nemesis proxy) and `disk` in wall-clock time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled executor crashes (multiple crashes, any executors).
    pub crashes: Vec<ExecutorCrash>,
    /// Probability in `[0, 1)` that any given task attempt fails
    /// transiently (a lost shuffle block, an OOM-killed JVM task, a disk
    /// read error) partway through execution.
    pub task_failure_probability: f64,
    /// Scheduled node slowdowns.
    pub slowdowns: Vec<NodeSlowdown>,
    /// Probability in `[0, 1)` that a single heartbeat message is lost in
    /// flight. Heartbeats are fire-and-forget; data-plane RPCs are modelled
    /// as reliable and are only ever delayed, never dropped.
    pub heartbeat_loss_probability: f64,
    /// Maximum extra one-way delay in seconds added to each driver↔executor
    /// message, drawn uniformly from `[0, message_delay_max)`.
    pub message_delay_max: f64,
    /// Scheduled wire-level faults (live runtime: nemesis proxy).
    pub wire: Vec<WireFault>,
    /// Scheduled spill-file corruptions (live runtime: disk-fault agent).
    pub disk: Vec<DiskFault>,
    /// Seed of the fault RNG stream.
    pub seed: u64,
}

impl FaultPlan {
    /// Creates an empty plan with the given fault-stream seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Adds a scheduled executor crash.
    pub fn with_crash(mut self, executor: usize, at: f64, downtime: f64) -> Self {
        self.crashes.push(ExecutorCrash {
            executor,
            at,
            downtime,
        });
        self
    }

    /// Sets the per-attempt transient failure probability.
    pub fn with_task_failures(mut self, probability: f64) -> Self {
        self.task_failure_probability = probability;
        self
    }

    /// Adds a scheduled node slowdown.
    pub fn with_slowdown(mut self, node: usize, at: f64, duration: f64, severity: f64) -> Self {
        self.slowdowns.push(NodeSlowdown {
            node,
            at,
            duration,
            severity,
        });
        self
    }

    /// Sets the heartbeat loss probability.
    pub fn with_heartbeat_loss(mut self, probability: f64) -> Self {
        self.heartbeat_loss_probability = probability;
        self
    }

    /// Sets the maximum extra message delay in seconds.
    pub fn with_message_delay(mut self, max_delay: f64) -> Self {
        self.message_delay_max = max_delay;
        self
    }

    /// Adds a wire fault with an explicit direction and kind.
    pub fn with_wire_fault(
        mut self,
        executor: usize,
        at: f64,
        duration: f64,
        direction: WireDirection,
        kind: WireFaultKind,
    ) -> Self {
        self.wire.push(WireFault {
            executor,
            at,
            duration,
            direction,
            kind,
        });
        self
    }

    /// Adds a per-frame delay window on both directions of a link.
    pub fn with_wire_delay(self, executor: usize, at: f64, duration: f64, seconds: f64) -> Self {
        self.with_wire_fault(
            executor,
            at,
            duration,
            WireDirection::Both,
            WireFaultKind::Delay { seconds },
        )
    }

    /// Adds a bandwidth throttle window on both directions of a link.
    pub fn with_throttle(
        self,
        executor: usize,
        at: f64,
        duration: f64,
        bytes_per_sec: f64,
    ) -> Self {
        self.with_wire_fault(
            executor,
            at,
            duration,
            WireDirection::Both,
            WireFaultKind::Throttle { bytes_per_sec },
        )
    }

    /// Adds a probabilistic frame-drop window on both directions.
    pub fn with_wire_drop(self, executor: usize, at: f64, duration: f64, p: f64) -> Self {
        self.with_wire_fault(
            executor,
            at,
            duration,
            WireDirection::Both,
            WireFaultKind::Drop { probability: p },
        )
    }

    /// Adds a probabilistic frame-duplication window on both directions.
    pub fn with_wire_duplicate(self, executor: usize, at: f64, duration: f64, p: f64) -> Self {
        self.with_wire_fault(
            executor,
            at,
            duration,
            WireDirection::Both,
            WireFaultKind::Duplicate { probability: p },
        )
    }

    /// Schedules a mid-frame connection reset shortly after `at`.
    pub fn with_reset(self, executor: usize, at: f64) -> Self {
        self.with_wire_fault(executor, at, 0.1, WireDirection::Both, WireFaultKind::Reset)
    }

    /// Adds a (possibly asymmetric) partition window.
    pub fn with_partition(
        self,
        executor: usize,
        at: f64,
        duration: f64,
        direction: WireDirection,
    ) -> Self {
        self.with_wire_fault(executor, at, duration, direction, WireFaultKind::Partition)
    }

    /// Schedules a spill-file corruption for `task` at time `at`.
    pub fn with_disk_fault(mut self, task: usize, at: f64) -> Self {
        self.disk.push(DiskFault { task, at });
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.slowdowns.is_empty()
            && self.task_failure_probability == 0.0
            && self.heartbeat_loss_probability == 0.0
            && self.message_delay_max == 0.0
            && self.wire.is_empty()
            && self.disk.is_empty()
    }

    /// Validates the plan against a cluster size.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range executors/nodes, non-positive downtimes or
    /// durations, or probabilities outside `[0, 1)`.
    pub fn validate(&self, nodes: usize) {
        for crash in &self.crashes {
            assert!(
                crash.executor < nodes,
                "fault plan: crash targets executor {} of {nodes}",
                crash.executor
            );
            assert!(
                crash.at.is_finite() && crash.at >= 0.0,
                "fault plan: crash time must be finite and >= 0, got {}",
                crash.at
            );
            assert!(
                crash.downtime.is_finite() && crash.downtime > 0.0,
                "fault plan: crash downtime must be positive, got {}",
                crash.downtime
            );
        }
        for slow in &self.slowdowns {
            assert!(
                slow.node < nodes,
                "fault plan: slowdown targets node {} of {nodes}",
                slow.node
            );
            assert!(
                slow.at.is_finite() && slow.at >= 0.0,
                "fault plan: slowdown time must be finite and >= 0, got {}",
                slow.at
            );
            assert!(
                slow.duration.is_finite() && slow.duration > 0.0,
                "fault plan: slowdown duration must be positive, got {}",
                slow.duration
            );
            assert!(
                slow.severity > 0.0 && slow.severity <= 1.0,
                "fault plan: slowdown severity must be in (0, 1], got {}",
                slow.severity
            );
        }
        for (label, p) in [
            ("task failure", self.task_failure_probability),
            ("heartbeat loss", self.heartbeat_loss_probability),
        ] {
            assert!(
                (0.0..1.0).contains(&p),
                "fault plan: {label} probability must be in [0, 1), got {p}"
            );
        }
        assert!(
            self.message_delay_max.is_finite() && self.message_delay_max >= 0.0,
            "fault plan: message delay must be finite and >= 0, got {}",
            self.message_delay_max
        );
        for fault in &self.wire {
            assert!(
                fault.executor < nodes,
                "fault plan: wire fault targets executor {} of {nodes}",
                fault.executor
            );
            assert!(
                fault.at.is_finite() && fault.at >= 0.0,
                "fault plan: wire fault time must be finite and >= 0, got {}",
                fault.at
            );
            assert!(
                fault.duration.is_finite() && fault.duration > 0.0,
                "fault plan: wire fault duration must be positive, got {}",
                fault.duration
            );
            match fault.kind {
                WireFaultKind::Delay { seconds } => assert!(
                    seconds.is_finite() && seconds >= 0.0,
                    "fault plan: wire delay must be finite and >= 0, got {seconds}"
                ),
                WireFaultKind::Throttle { bytes_per_sec } => assert!(
                    bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
                    "fault plan: throttle bandwidth must be positive, got {bytes_per_sec}"
                ),
                WireFaultKind::Drop { probability } | WireFaultKind::Duplicate { probability } => {
                    assert!(
                        (0.0..1.0).contains(&probability),
                        "fault plan: wire {} probability must be in [0, 1), got {probability}",
                        fault.kind.label()
                    )
                }
                WireFaultKind::Reset | WireFaultKind::Partition => {}
            }
        }
        for fault in &self.disk {
            assert!(
                fault.at.is_finite() && fault.at >= 0.0,
                "fault plan: disk fault time must be finite and >= 0, got {}",
                fault.at
            );
        }
    }
}

/// Driver-side fault-tolerance configuration, mirroring Spark's
/// `spark.task.maxFailures` / blacklisting / speculation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultToleranceConfig {
    /// Maximum attempts per task (first run + retries). When a task fails
    /// this many times the job aborts with
    /// [`JobError::MaxAttemptsExceeded`](crate::JobError::MaxAttemptsExceeded).
    pub max_task_attempts: usize,
    /// Base of the exponential retry backoff in seconds: attempt `k`
    /// (zero-based) is delayed by `base · 2^(k-1)` after its failure.
    pub retry_backoff_base: f64,
    /// Executor-side heartbeat period in seconds.
    pub heartbeat_interval: f64,
    /// Silence after which the driver declares an executor lost, in
    /// seconds. Should comfortably exceed the interval so occasional
    /// heartbeat loss does not trigger false positives.
    pub heartbeat_timeout: f64,
    /// Task failures on one executor *within a single stage* after which
    /// the driver blacklists it for the rest of the job (no further
    /// assignments) — unless it is the last usable executor.
    pub blacklist_after: usize,
    /// Whether stragglers are speculatively re-executed even in fault-free
    /// runs. Runs with a fault plan always speculate.
    pub speculation: bool,
    /// A running attempt is a straggler when it has run longer than this
    /// multiple of the median completed-attempt duration of the stage.
    pub speculation_multiplier: f64,
    /// Fraction of the stage's tasks that must have completed before
    /// speculation activates.
    pub speculation_quantile: f64,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        Self {
            max_task_attempts: 4,
            retry_backoff_base: 0.5,
            heartbeat_interval: 2.0,
            heartbeat_timeout: 6.0,
            blacklist_after: 3,
            speculation: false,
            speculation_multiplier: 1.5,
            speculation_quantile: 0.75,
        }
    }
}

impl FaultToleranceConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero retry budget, non-positive timings, or a heartbeat
    /// timeout not exceeding the interval.
    pub fn validate(&self) {
        assert!(self.max_task_attempts > 0, "need at least one task attempt");
        assert!(
            self.retry_backoff_base.is_finite() && self.retry_backoff_base >= 0.0,
            "retry backoff must be finite and >= 0"
        );
        assert!(
            self.heartbeat_interval > 0.0,
            "heartbeat interval must be positive"
        );
        assert!(
            self.heartbeat_timeout > self.heartbeat_interval,
            "heartbeat timeout ({}) must exceed the interval ({})",
            self.heartbeat_timeout,
            self.heartbeat_interval
        );
        assert!(self.blacklist_after > 0, "blacklist threshold must be > 0");
        assert!(
            self.speculation_multiplier >= 1.0,
            "speculation multiplier must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.speculation_quantile),
            "speculation quantile must be in [0, 1]"
        );
    }
}

impl EngineConfig {
    /// The paper's primary setup: 4 DAS-5 nodes with HDDs (§6.1).
    pub fn four_node_hdd() -> Self {
        Self {
            nodes: 4,
            node_spec: NodeSpec::das5_hdd(),
            fabric: FabricConfig::das5(),
            variability: VariabilityConfig::homogeneous(),
            block_size_mb: 128,
            input_replication: 4,
            output_replication: 1,
            shuffle_partitions_per_core: 2.5,
            chunks_per_task: 4,
            fetch_parallelism: 8,
            incast_free_requests: 64,
            incast_stall_base: 0.25,
            rpc_latency: 0.0005,
            sample_interval: 1.0,
            seed: 42,
            fault_plan: None,
            fault_tolerance: FaultToleranceConfig::default(),
            #[cfg(any(test, feature = "reference-impl"))]
            reference_scheduler: false,
        }
    }

    /// The SSD variant of §6.3.
    pub fn four_node_ssd() -> Self {
        Self {
            node_spec: NodeSpec::das5_ssd(),
            ..Self::four_node_hdd()
        }
    }

    /// The 16-node scalability setup of Figure 9 (input replication stays
    /// at 4, matching HDFS practice at that scale).
    pub fn sixteen_node_hdd() -> Self {
        Self {
            nodes: 16,
            input_replication: 4,
            ..Self::four_node_hdd()
        }
    }

    /// Scales node count while keeping everything else.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        self.nodes = nodes;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables DAS-5-style per-node variability.
    pub fn with_variability(mut self, variability: VariabilityConfig) -> Self {
        self.variability = variability;
        self
    }

    /// Total virtual cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node_spec.cores
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (zero nodes/chunks, non-positive
    /// intervals, zero replication).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.block_size_mb > 0, "block size must be positive");
        assert!(self.input_replication > 0, "input replication must be > 0");
        assert!(
            self.output_replication > 0,
            "output replication must be > 0"
        );
        assert!(self.chunks_per_task > 0, "chunks per task must be > 0");
        assert!(self.fetch_parallelism > 0, "fetch parallelism must be > 0");
        assert!(
            self.shuffle_partitions_per_core > 0.0,
            "shuffle partitions per core must be positive"
        );
        assert!(self.rpc_latency >= 0.0, "rpc latency must be >= 0");
        assert!(self.sample_interval > 0.0, "sample interval must be > 0");
        self.fault_tolerance.validate();
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.nodes);
        }
    }

    /// Default thread-pool size per executor (one per virtual core).
    pub fn default_threads(&self) -> usize {
        self.node_spec.cores
    }

    /// A default adaptive policy for this configuration (`c_min = 2`,
    /// `c_max` = cores).
    pub fn adaptive_policy(&self) -> ThreadPolicy {
        ThreadPolicy::Adaptive(sae_core::MapeConfig::new(2, self.node_spec.cores))
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::four_node_hdd()
    }
}

/// Functional categories of engine parameters, matching Table 1's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConfigCategory {
    /// Shuffle behaviour.
    Shuffle,
    /// Compression and serialization.
    CompressionSerialization,
    /// Memory management.
    MemoryManagement,
    /// Execution behaviour.
    ExecutionBehavior,
    /// Networking.
    Network,
    /// Scheduling.
    Scheduling,
    /// Dynamic allocation.
    DynamicAllocation,
}

impl ConfigCategory {
    /// Human-readable name as printed in Table 1.
    pub fn display_name(self) -> &'static str {
        match self {
            ConfigCategory::Shuffle => "Shuffle",
            ConfigCategory::CompressionSerialization => "Compression and Serialization",
            ConfigCategory::MemoryManagement => "Memory Management",
            ConfigCategory::ExecutionBehavior => "Execution Behavior",
            ConfigCategory::Network => "Network",
            ConfigCategory::Scheduling => "Scheduling",
            ConfigCategory::DynamicAllocation => "Dynamic Allocation",
        }
    }

    /// All categories, in Table 1 order.
    pub const ALL: [ConfigCategory; 7] = [
        ConfigCategory::Shuffle,
        ConfigCategory::CompressionSerialization,
        ConfigCategory::MemoryManagement,
        ConfigCategory::ExecutionBehavior,
        ConfigCategory::Network,
        ConfigCategory::Scheduling,
        ConfigCategory::DynamicAllocation,
    ];
}

/// One named, documented parameter in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigParameter {
    /// Dotted parameter name (`"sae.shuffle.partitionsPerCore"`).
    pub name: &'static str,
    /// Category for Table 1-style grouping.
    pub category: ConfigCategory,
    /// Whether the parameter directly affects performance.
    pub performance_relevant: bool,
}

/// A catalog of functional parameters, reproducing Table 1.
///
/// Two catalogs are provided: [`ParameterCatalog::spark_2_4_2`] is the
/// reference data the paper counted (117 parameters across 7 categories),
/// and [`ParameterCatalog::engine`] enumerates this engine's own tunables
/// to show the same disease in miniature.
#[derive(Debug, Clone, Default)]
pub struct ParameterCatalog {
    parameters: Vec<ConfigParameter>,
}

impl ParameterCatalog {
    /// The Spark 2.4.2 functional-parameter counts from Table 1.
    ///
    /// Parameter names are not reproduced (the paper only reports counts);
    /// entries are synthesised as `spark.<category>.pN`.
    pub fn spark_2_4_2() -> Self {
        fn synth(
            category: ConfigCategory,
            count: usize,
            names: &'static [&'static str],
        ) -> Vec<ConfigParameter> {
            (0..count)
                .map(|i| ConfigParameter {
                    name: names.get(i).copied().unwrap_or("spark.parameter"),
                    category,
                    performance_relevant: true,
                })
                .collect()
        }
        let mut parameters = Vec::new();
        parameters.extend(synth(
            ConfigCategory::Shuffle,
            19,
            &[
                "spark.shuffle.compress",
                "spark.shuffle.file.buffer",
                "spark.reducer.maxSizeInFlight",
            ],
        ));
        parameters.extend(synth(
            ConfigCategory::CompressionSerialization,
            16,
            &["spark.io.compression.codec", "spark.serializer"],
        ));
        parameters.extend(synth(
            ConfigCategory::MemoryManagement,
            14,
            &["spark.memory.fraction", "spark.memory.storageFraction"],
        ));
        parameters.extend(synth(
            ConfigCategory::ExecutionBehavior,
            14,
            &["spark.executor.cores", "spark.default.parallelism"],
        ));
        parameters.extend(synth(
            ConfigCategory::Network,
            13,
            &["spark.network.timeout", "spark.rpc.askTimeout"],
        ));
        parameters.extend(synth(
            ConfigCategory::Scheduling,
            32,
            &[
                "spark.locality.wait",
                "spark.speculation",
                "spark.task.cpus",
            ],
        ));
        parameters.extend(synth(
            ConfigCategory::DynamicAllocation,
            9,
            &["spark.dynamicAllocation.enabled"],
        ));
        Self { parameters }
    }

    /// This engine's own tunables, categorised the same way.
    pub fn engine() -> Self {
        use ConfigCategory::*;
        let p = |name, category| ConfigParameter {
            name,
            category,
            performance_relevant: true,
        };
        Self {
            parameters: vec![
                p("sae.shuffle.partitionsPerCore", Shuffle),
                p("sae.shuffle.fetchParallelism", Shuffle),
                p("sae.shuffle.fragmentPenalty", Shuffle),
                p("sae.storage.blockSizeMb", MemoryManagement),
                p("sae.storage.inputReplication", MemoryManagement),
                p("sae.storage.outputReplication", MemoryManagement),
                p("sae.executor.chunksPerTask", ExecutionBehavior),
                p("sae.executor.threads", ExecutionBehavior),
                p("sae.executor.adaptive.cMin", ExecutionBehavior),
                p("sae.executor.adaptive.cMax", ExecutionBehavior),
                p("sae.network.rpcLatency", Network),
                p("sae.network.ingressBandwidth", Network),
                p("sae.network.perStreamCap", Network),
                p("sae.scheduler.sampleInterval", Scheduling),
                p("sae.scheduler.localityPreferred", Scheduling),
                p("sae.cluster.nodes", Scheduling),
                p("sae.cluster.seed", Scheduling),
            ],
        }
    }

    /// Number of parameters in `category`.
    pub fn count(&self, category: ConfigCategory) -> usize {
        self.parameters
            .iter()
            .filter(|p| p.category == category)
            .count()
    }

    /// Total parameter count.
    pub fn total(&self) -> usize {
        self.parameters.len()
    }

    /// Iterates all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &ConfigParameter> {
        self.parameters.iter()
    }

    /// Renders Table 1: `(category name, count)` rows plus the total.
    pub fn table(&self) -> Vec<(String, usize)> {
        let mut rows: Vec<(String, usize)> = ConfigCategory::ALL
            .iter()
            .map(|&c| (c.display_name().to_owned(), self.count(c)))
            .collect();
        rows.push(("Total".to_owned(), self.total()));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_catalog_matches_table_1() {
        let cat = ParameterCatalog::spark_2_4_2();
        assert_eq!(cat.count(ConfigCategory::Shuffle), 19);
        assert_eq!(cat.count(ConfigCategory::CompressionSerialization), 16);
        assert_eq!(cat.count(ConfigCategory::MemoryManagement), 14);
        assert_eq!(cat.count(ConfigCategory::ExecutionBehavior), 14);
        assert_eq!(cat.count(ConfigCategory::Network), 13);
        assert_eq!(cat.count(ConfigCategory::Scheduling), 32);
        assert_eq!(cat.count(ConfigCategory::DynamicAllocation), 9);
        assert_eq!(cat.total(), 117);
    }

    #[test]
    fn table_rows_end_with_total() {
        let rows = ParameterCatalog::spark_2_4_2().table();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.last().unwrap(), &("Total".to_owned(), 117));
    }

    #[test]
    fn engine_catalog_is_nonempty_and_categorised() {
        let cat = ParameterCatalog::engine();
        assert!(cat.total() >= 15);
        assert!(cat.count(ConfigCategory::Shuffle) >= 2);
    }

    #[test]
    fn four_node_config_is_paper_setup() {
        let cfg = EngineConfig::four_node_hdd();
        cfg.validate();
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.total_cores(), 128);
        assert_eq!(cfg.default_threads(), 32);
        assert_eq!(cfg.input_replication, 4);
    }

    #[test]
    fn sixteen_node_config_scales() {
        let cfg = EngineConfig::sixteen_node_hdd();
        cfg.validate();
        assert_eq!(cfg.nodes, 16);
        assert_eq!(cfg.total_cores(), 512);
    }

    #[test]
    fn ssd_config_uses_ssd() {
        assert_eq!(
            EngineConfig::four_node_ssd().node_spec.disk.name(),
            "ssd-sata"
        );
    }

    #[test]
    fn adaptive_policy_bounds_match_cores() {
        match EngineConfig::four_node_hdd().adaptive_policy() {
            ThreadPolicy::Adaptive(cfg) => {
                assert_eq!(cfg.c_min, 2);
                assert_eq!(cfg.c_max, 32);
            }
            _ => panic!("expected adaptive"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        EngineConfig::four_node_hdd().with_nodes(0).validate();
    }

    #[test]
    fn fault_plan_builder_chains() {
        let plan = FaultPlan::new(7)
            .with_crash(1, 60.0, 30.0)
            .with_crash(2, 90.0, 15.0)
            .with_task_failures(0.02)
            .with_slowdown(0, 10.0, 20.0, 0.5)
            .with_heartbeat_loss(0.1)
            .with_message_delay(0.01);
        plan.validate(4);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.slowdowns.len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(7).is_empty());
    }

    #[test]
    fn wire_and_disk_faults_chain_and_validate() {
        let plan = FaultPlan::new(9)
            .with_throttle(0, 0.0, 30.0, 64.0 * 1024.0)
            .with_wire_delay(1, 2.0, 3.0, 0.05)
            .with_wire_drop(2, 1.0, 2.0, 0.25)
            .with_wire_duplicate(2, 1.0, 2.0, 0.25)
            .with_reset(3, 4.0)
            .with_partition(1, 5.0, 1.5, WireDirection::ToDriver)
            .with_disk_fault(7, 0.5);
        plan.validate(4);
        assert_eq!(plan.wire.len(), 6);
        assert_eq!(plan.disk.len(), 1);
        assert!(!plan.is_empty());
        // Wire-only and disk-only plans are non-empty too.
        assert!(!FaultPlan::new(0).with_reset(0, 1.0).is_empty());
        assert!(!FaultPlan::new(0).with_disk_fault(0, 1.0).is_empty());
    }

    #[test]
    fn wire_direction_coverage() {
        assert!(WireDirection::Both.covers_to_driver());
        assert!(WireDirection::Both.covers_to_executor());
        assert!(WireDirection::ToDriver.covers_to_driver());
        assert!(!WireDirection::ToDriver.covers_to_executor());
        assert!(!WireDirection::ToExecutor.covers_to_driver());
        assert!(WireDirection::ToExecutor.covers_to_executor());
    }

    #[test]
    #[should_panic(expected = "wire fault targets executor")]
    fn wire_fault_on_missing_executor_rejected() {
        FaultPlan::new(0)
            .with_throttle(4, 0.0, 1.0, 1024.0)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "throttle bandwidth must be positive")]
    fn zero_throttle_bandwidth_rejected() {
        FaultPlan::new(0)
            .with_throttle(0, 0.0, 1.0, 0.0)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "drop probability must be in")]
    fn certain_wire_drop_rejected() {
        FaultPlan::new(0)
            .with_wire_drop(0, 0.0, 1.0, 1.0)
            .validate(4);
    }

    #[test]
    fn fault_plan_accepted_by_engine_config() {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.fault_plan = Some(FaultPlan::new(1).with_crash(3, 5.0, 10.0));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "crash targets executor")]
    fn crash_on_missing_executor_rejected() {
        FaultPlan::new(0).with_crash(4, 1.0, 1.0).validate(4);
    }

    #[test]
    #[should_panic(expected = "downtime must be positive")]
    fn zero_downtime_rejected() {
        FaultPlan::new(0).with_crash(0, 1.0, 0.0).validate(4);
    }

    #[test]
    #[should_panic(expected = "severity must be in")]
    fn excessive_slowdown_severity_rejected() {
        FaultPlan::new(0)
            .with_slowdown(0, 1.0, 1.0, 1.5)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn certain_task_failure_rejected() {
        FaultPlan::new(0).with_task_failures(1.0).validate(4);
    }

    #[test]
    fn fault_tolerance_defaults_validate() {
        let ft = FaultToleranceConfig::default();
        ft.validate();
        assert_eq!(ft.max_task_attempts, 4);
        assert!(ft.heartbeat_timeout > ft.heartbeat_interval);
    }

    #[test]
    #[should_panic(expected = "must exceed the interval")]
    fn heartbeat_timeout_below_interval_rejected() {
        let ft = FaultToleranceConfig {
            heartbeat_timeout: 1.0,
            ..FaultToleranceConfig::default()
        };
        ft.validate();
    }
}
