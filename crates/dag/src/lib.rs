//! A Spark-like dataset/DAG engine on top of the SAE simulator.
//!
//! This crate is the "host system" substitute for Apache Spark: the paper's
//! contribution (`sae-core`) is a drop-in replacement for the Spark
//! *Executor*, so reproducing it requires the surrounding machinery —
//! jobs described as operator pipelines ([`JobSpec`]), split into stages at
//! shuffle boundaries, scheduled stage-at-a-time by a driver that tracks
//! per-executor free capacity ([`Engine`]), executed by per-node executors
//! whose bounded task-slot pools implement [`sae_core::TunablePool`], and
//! an executor↔driver messaging protocol extended with the pool-size
//! notification of §5.4 ([`Message`]).
//!
//! Everything runs in simulated time on [`sae_sim::Kernel`]; tasks
//! interleave CPU and I/O chunks so that CPU utilisation, iowait and disk
//! contention *emerge* from the device models rather than being scripted.
//!
//! # Examples
//!
//! ```
//! use sae_core::ThreadPolicy;
//! use sae_dag::{Engine, EngineConfig, JobSpec, StageSpec};
//!
//! // A single-stage job that reads 2 GB and writes 1 GB.
//! let job = JobSpec::builder("demo")
//!     .stage(
//!         StageSpec::read("ingest", 2048.0)
//!             .cpu_per_mb(0.002)
//!             .write_output(1024.0),
//!     )
//!     .build();
//! let report = Engine::new(EngineConfig::four_node_hdd(), ThreadPolicy::Default)
//!     .run(&job);
//! assert_eq!(report.stages.len(), 1);
//! assert!(report.total_runtime > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod config;
mod engine;
mod executor;
mod job;
mod messages;
mod report;
pub mod sched;
mod task;
mod trace;

pub use config::{
    ConfigCategory, ConfigParameter, DiskFault, EngineConfig, ExecutorCrash, FaultPlan,
    FaultToleranceConfig, NodeSlowdown, ParameterCatalog, WireDirection, WireFault, WireFaultKind,
};
pub use engine::{Engine, JobError};
pub use executor::{ExecutorStats, SlotPool};
pub use job::{JobSpec, JobSpecBuilder, Operator, StageSpec};
pub use messages::Message;
pub use report::{ExecutorStageReport, JobReport, StageReport};
pub use trace::{append_chrome_entries, ExecutionTrace, TraceEvent};
