//! The driver: stage-at-a-time scheduling, executors, fault tolerance,
//! and the run loop.

use sae_cluster::{Cluster, ClusterBuilder, Dfs};
use sae_core::{AdaptiveController, ThreadPolicy, TunablePool};
use sae_sim::rng::DeterministicRng;
use sae_sim::{FlowId, Kernel, Occurrence, ResourceId, ResourceUsage, SimTime, TimerId};

use crate::config::EngineConfig;
use crate::executor::ExecutorState;
use crate::job::{JobSpec, StageSpec};
use crate::messages::Message;
use crate::report::{ExecutorStageReport, JobReport, StageReport};
#[cfg(any(test, feature = "reference-impl"))]
use crate::sched::ReferenceQueue;
use crate::sched::{PendingQueue, RunningMedian, Scheduler};
use crate::task::{Accounting, AttemptState, FlowTarget, TaskPlan, TaskState};
use crate::trace::{ExecutionTrace, TraceEvent};
use std::collections::BTreeSet;

/// Outstanding work assigned to an antagonist disk flow during an injected
/// node slowdown — effectively infinite; the flow only ends by cancellation.
const ANTAGONIST_WORK: f64 = 1e15;

/// A structured, clean job failure.
///
/// Fault-tolerant runs either complete or fail with one of these — never a
/// hang or a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// A task exhausted its retry budget
    /// ([`FaultToleranceConfig::max_task_attempts`](crate::FaultToleranceConfig::max_task_attempts)).
    MaxAttemptsExceeded {
        /// The task that gave up.
        task: usize,
        /// Its stage.
        stage: usize,
        /// Failed attempts at the point of giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::MaxAttemptsExceeded {
                task,
                stage,
                attempts,
            } => write!(
                f,
                "task {task} of stage {stage} failed {attempts} times (max attempts exceeded)"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Kernel event payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// One flow of an attempt's current phase completed.
    PhaseDone { task: usize, attempt: usize },
    /// An incast stall elapsed; the delayed phase's flows may start.
    StallOver { task: usize, attempt: usize },
    /// Fault injection: crash `plan.crashes[crash]` happens now.
    ExecutorCrash { crash: usize },
    /// The crashed executor's replacement process comes up.
    ExecutorRestart { executor: usize },
    /// An executor's heartbeat period elapsed; it emits a beacon.
    HeartbeatTick { executor: usize },
    /// The driver scans for heartbeat-timeout expiries.
    HeartbeatCheck,
    /// Fault injection: slowdown `plan.slowdowns[slowdown]` begins.
    SlowdownStart { slowdown: usize },
    /// The slowdown's duration elapsed; antagonist traffic stops.
    SlowdownEnd { slowdown: usize },
    /// A failed task's retry backoff elapsed; it may be requeued.
    RetryReady { task: usize },
    /// A background replication write completed.
    BackgroundDone { bytes: f64 },
    /// A driver↔executor RPC message arrived.
    Rpc(Message),
    /// The 1 Hz metrics sampler fired.
    Sample,
}

/// Runs jobs on a simulated cluster under a given thread policy.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    policy: ThreadPolicy,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EngineConfig, policy: ThreadPolicy) -> Self {
        config.validate();
        Self { config, policy }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's thread policy.
    pub fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    /// Runs `job` to completion, or to a clean failure when a fault plan
    /// exhausts some task's retry budget.
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid.
    pub fn try_run(&self, job: &JobSpec) -> Result<JobReport, JobError> {
        job.validate();
        Run::new(&self.config, &self.policy, job).execute().0
    }

    /// Runs `job` to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid or the job fails under its fault
    /// plan (use [`Engine::try_run`] to handle failure).
    pub fn run(&self, job: &JobSpec) -> JobReport {
        self.try_run(job)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }

    /// Like [`Engine::try_run`], additionally recording a structured
    /// [`ExecutionTrace`] (stage/task lifecycles, attempts, pool resizes,
    /// failures, blacklists) suitable for Chrome-trace export.
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid.
    pub fn try_run_traced(&self, job: &JobSpec) -> Result<(JobReport, ExecutionTrace), JobError> {
        job.validate();
        let mut run = Run::new(&self.config, &self.policy, job);
        run.trace = Some(ExecutionTrace::new());
        let (result, trace) = run.execute();
        result.map(|report| (report, trace.expect("trace was enabled")))
    }

    /// Like [`Engine::run`], additionally recording an [`ExecutionTrace`].
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid or the job fails under its fault
    /// plan (use [`Engine::try_run_traced`] to handle failure).
    pub fn run_traced(&self, job: &JobSpec) -> (JobReport, ExecutionTrace) {
        self.try_run_traced(job)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }
}

/// Snapshot of cumulative resource usage, for exact stage-level integrals.
#[derive(Debug, Clone, Default)]
struct UsageSnapshot {
    cpu: Vec<ResourceUsage>,
    disk: Vec<ResourceUsage>,
    nic: Vec<ResourceUsage>,
    serve: Vec<ResourceUsage>,
}

struct Run<'a> {
    cfg: &'a EngineConfig,
    policy: &'a ThreadPolicy,
    job: &'a JobSpec,
    kernel: Kernel<Event>,
    cluster: Cluster,
    dfs: Dfs,
    executors: Vec<ExecutorState>,
    tasks: Vec<TaskState>,
    /// Pending (unassigned) task ids of the current stage, indexed for
    /// amortized O(1) locality-aware assignment.
    sched: Scheduler,
    /// Scratch worklist of `(executor, free slots)` rebuilt per scheduling
    /// round; shared by assignment sweeps and speculation targeting.
    free_slots: Vec<(usize, usize)>,
    /// Driver's view of each executor's capacity (updated via RPC).
    driver_capacity: Vec<usize>,
    /// Driver's count of attempts assigned-or-running per executor.
    driver_running: Vec<usize>,
    current_stage: usize,
    stage_tasks_remaining: usize,
    stage_started_at: f64,
    stage_usage_start: UsageSnapshot,
    stage_disk_read: f64,
    stage_disk_write: f64,
    stage_shuffle: f64,
    /// Per-executor thread-count traces for the current stage.
    stage_decisions: Vec<Vec<usize>>,
    /// Cluster disk throughput samples for the current stage.
    stage_series: Vec<(f64, f64)>,
    /// Attempt launches / failures / speculation counters for the stage.
    stage_attempts: usize,
    stage_failed_attempts: usize,
    stage_spec_launched: usize,
    stage_spec_wins: usize,
    /// Running median of completed-attempt durations this stage
    /// (straggler detection).
    stage_attempt_durations: RunningMedian,
    /// Tasks that may currently be speculation-eligible (exactly one live
    /// non-speculative attempt). Maintained incrementally at task launch
    /// and pruned lazily when a member turns out completed or speculated,
    /// so `maybe_speculate` walks candidates instead of every task.
    spec_candidates: BTreeSet<usize>,
    /// Scratch for iterating `spec_candidates` while mutating run state.
    spec_scratch: Vec<usize>,
    /// Scratch for `TaskPlan::fetch_sources` (reused across assignments).
    fetch_sources_buf: Vec<usize>,
    /// Scratch for `TaskPlan::build_phases_with` chunk weights.
    chunk_weights_buf: Vec<f64>,
    last_sample_usage: Vec<ResourceUsage>,
    last_sample_time: f64,
    sample_timer: Option<TimerId>,
    /// Fetch requests currently pointed at each node's serve path
    /// (including stalled ones) — drives the incast stall model.
    serve_pressure: Vec<usize>,
    /// Ground truth: whether the executor process is running.
    executor_alive: Vec<bool>,
    /// The driver's belief — lags behind reality by up to the heartbeat
    /// timeout, since loss is only ever *detected* through silence.
    driver_sees_alive: Vec<bool>,
    /// Executors the driver refuses to assign to.
    blacklisted: Vec<bool>,
    /// Blacklist events in order, for the job report.
    blacklist_order: Vec<usize>,
    /// Task failures per executor (drives blacklisting).
    executor_task_failures: Vec<usize>,
    /// Last heartbeat arrival per executor (driver side).
    last_heartbeat: Vec<f64>,
    /// Each executor's pending heartbeat-tick timer.
    heartbeat_timers: Vec<Option<TimerId>>,
    /// The driver's pending timeout-scan timer.
    heartbeat_check_timer: Option<TimerId>,
    /// Pending fault-subsystem timers (crashes, slowdowns, retries);
    /// cancelled wholesale at job end.
    fault_timers: Vec<TimerId>,
    /// Assignments that arrived at a dead-but-undetected executor, per
    /// executor; requeued when the loss is detected.
    lost_assignments: Vec<Vec<usize>>,
    /// Antagonist disk flows per active slowdown.
    slowdown_flows: Vec<Vec<(ResourceId, FlowId)>>,
    /// Tasks completed by an executor before it failed (kept so stage
    /// accounting stays exact across resets).
    lost_task_counts: Vec<usize>,
    rng: DeterministicRng,
    /// Dedicated fault stream: seeded from the plan, never from the main
    /// rng, so a fault-free run is bit-identical to a plan-free run.
    fault_rng: DeterministicRng,
    stage_reports: Vec<StageReport>,
    job_done: bool,
    job_done_at: f64,
    /// Completion time of the latest flow, for the runtime bound (leftover
    /// timer chatter after job end must not stretch the reported runtime).
    last_flow_time: f64,
    error: Option<JobError>,
    trace: Option<ExecutionTrace>,
}

impl<'a> Run<'a> {
    fn new(cfg: &'a EngineConfig, policy: &'a ThreadPolicy, job: &'a JobSpec) -> Self {
        let mut kernel = Kernel::new();
        let cluster = ClusterBuilder::new(cfg.nodes)
            .node_spec(cfg.node_spec.clone())
            .fabric(cfg.fabric)
            .variability(cfg.variability)
            .seed(cfg.seed)
            .build(&mut kernel);
        let mut dfs = Dfs::new(cfg.block_size_mb, cfg.input_replication, cfg.seed);
        for (i, stage) in job.stages.iter().enumerate() {
            if stage.read_mb > 0.0 {
                dfs.create_file(
                    &format!("{}/stage{}/input", job.name, i),
                    stage.read_mb,
                    cfg.nodes,
                );
            }
        }
        let executors = (0..cfg.nodes)
            .map(|e| {
                let controller = match policy {
                    ThreadPolicy::Adaptive(mape) => {
                        Some(AdaptiveController::new(*mape).with_executor(e))
                    }
                    _ => None,
                };
                ExecutorState::new(cfg.default_threads(), controller)
            })
            .collect();
        let rng = DeterministicRng::seed(cfg.seed ^ 0x5AE5_AE5A);
        let fault_rng = DeterministicRng::seed(
            cfg.fault_plan
                .as_ref()
                .map(|p| p.seed ^ 0xFA17_0FFA_170F)
                .unwrap_or(0),
        );
        let slowdown_count = cfg.fault_plan.as_ref().map_or(0, |p| p.slowdowns.len());
        #[cfg(any(test, feature = "reference-impl"))]
        let sched =
            if cfg.reference_scheduler || std::env::var_os("SAE_REFERENCE_SCHEDULER").is_some() {
                Scheduler::Reference(ReferenceQueue::new())
            } else {
                Scheduler::Indexed(PendingQueue::new())
            };
        #[cfg(not(any(test, feature = "reference-impl")))]
        let sched = Scheduler::Indexed(PendingQueue::new());
        Self {
            cfg,
            policy,
            job,
            kernel,
            cluster,
            executors,
            tasks: Vec::new(),
            sched,
            free_slots: Vec::new(),
            driver_capacity: vec![cfg.default_threads(); cfg.nodes],
            driver_running: vec![0; cfg.nodes],
            current_stage: 0,
            stage_tasks_remaining: 0,
            stage_started_at: 0.0,
            stage_usage_start: UsageSnapshot::default(),
            stage_disk_read: 0.0,
            stage_disk_write: 0.0,
            stage_shuffle: 0.0,
            stage_decisions: vec![Vec::new(); cfg.nodes],
            stage_series: Vec::new(),
            stage_attempts: 0,
            stage_failed_attempts: 0,
            stage_spec_launched: 0,
            stage_spec_wins: 0,
            stage_attempt_durations: RunningMedian::new(),
            spec_candidates: BTreeSet::new(),
            spec_scratch: Vec::new(),
            fetch_sources_buf: Vec::new(),
            chunk_weights_buf: Vec::new(),
            last_sample_usage: Vec::new(),
            last_sample_time: 0.0,
            sample_timer: None,
            serve_pressure: vec![0; cfg.nodes],
            executor_alive: vec![true; cfg.nodes],
            driver_sees_alive: vec![true; cfg.nodes],
            blacklisted: vec![false; cfg.nodes],
            blacklist_order: Vec::new(),
            executor_task_failures: vec![0; cfg.nodes],
            last_heartbeat: vec![0.0; cfg.nodes],
            heartbeat_timers: vec![None; cfg.nodes],
            heartbeat_check_timer: None,
            fault_timers: Vec::new(),
            lost_assignments: vec![Vec::new(); cfg.nodes],
            slowdown_flows: vec![Vec::new(); slowdown_count],
            lost_task_counts: vec![0; cfg.nodes],
            rng,
            fault_rng,
            stage_reports: Vec::new(),
            job_done: false,
            job_done_at: 0.0,
            last_flow_time: 0.0,
            error: None,
            trace: None,
            dfs,
        }
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    fn faults_enabled(&self) -> bool {
        self.cfg.fault_plan.is_some()
    }

    fn execute(mut self) -> (Result<JobReport, JobError>, Option<ExecutionTrace>) {
        if let Some(plan) = self.cfg.fault_plan.clone() {
            for (i, crash) in plan.crashes.iter().enumerate() {
                let t = self.kernel.schedule_timer(
                    SimTime::from_seconds(crash.at),
                    Event::ExecutorCrash { crash: i },
                );
                self.fault_timers.push(t);
            }
            for (i, slow) in plan.slowdowns.iter().enumerate() {
                let t = self.kernel.schedule_timer(
                    SimTime::from_seconds(slow.at),
                    Event::SlowdownStart { slowdown: i },
                );
                self.fault_timers.push(t);
            }
            // Failure detection is heartbeat-driven: executors beacon every
            // interval and the driver scans for silences. Without a fault
            // plan none of this machinery is scheduled, so fault-free runs
            // see zero extra events.
            for e in 0..self.cfg.nodes {
                self.schedule_heartbeat_tick(e);
            }
            let t = self.kernel.schedule_after(
                SimTime::from_seconds(self.cfg.fault_tolerance.heartbeat_interval),
                Event::HeartbeatCheck,
            );
            self.heartbeat_check_timer = Some(t);
        }
        self.start_stage(0);
        self.schedule_sample();
        while let Some(occ) = self.kernel.next() {
            match occ {
                Occurrence::FlowCompleted { payload, at, .. } => {
                    self.last_flow_time = at.seconds();
                    self.handle(payload, at.seconds());
                }
                Occurrence::TimerFired { payload, at, .. } => {
                    self.handle(payload, at.seconds());
                }
            }
            if self.job_done && self.kernel.is_idle() {
                break;
            }
        }
        if let Some(err) = self.error.take() {
            return (Err(err), self.trace);
        }
        let total_runtime = self.job_done_at.max(self.last_flow_time);
        (
            Ok(JobReport {
                job: self.job.name.clone(),
                policy: self.policy.name().to_owned(),
                nodes: self.cfg.nodes,
                total_cores: self.cfg.total_cores(),
                total_runtime,
                input_mb: self.job.total_input_mb(),
                stages: self.stage_reports,
                blacklisted_executors: self.blacklist_order,
            }),
            self.trace,
        )
    }

    fn attempt_is_live(&self, task: usize, attempt: usize) -> bool {
        self.tasks[task]
            .attempts
            .get(attempt)
            .is_some_and(|a| a.live)
    }

    fn handle(&mut self, event: Event, now: f64) {
        if self.job_done {
            // Leftover in-flight RPCs, replication completions and stray
            // timers drain inertly after completion or abort.
            return;
        }
        match event {
            Event::PhaseDone { task, attempt } => {
                if self.attempt_is_live(task, attempt) {
                    self.on_phase_flow_done(task, attempt, now);
                }
            }
            Event::StallOver { task, attempt } => {
                if self.attempt_is_live(task, attempt) {
                    self.tasks[task].attempts[attempt].stall_timer = None;
                    self.start_phase_flows(task, attempt);
                }
            }
            Event::ExecutorCrash { crash } => self.on_executor_crash(crash),
            Event::ExecutorRestart { executor } => self.on_executor_restart(executor, now),
            Event::HeartbeatTick { executor } => self.on_heartbeat_tick(executor),
            Event::HeartbeatCheck => self.on_heartbeat_check(now),
            Event::SlowdownStart { slowdown } => self.on_slowdown_start(slowdown),
            Event::SlowdownEnd { slowdown } => self.on_slowdown_end(slowdown),
            Event::RetryReady { task } => {
                self.requeue_if_needed(task);
                self.try_assign(now);
            }
            // Replication bytes are accounted at submission (they are
            // deterministic); the completion event only drains the flow.
            Event::BackgroundDone { .. } => {}
            Event::Rpc(msg) => self.on_rpc(msg, now),
            Event::Sample => {
                self.take_sample(now);
                self.maybe_speculate(now);
                if !self.job_done {
                    self.schedule_sample();
                } else {
                    self.sample_timer = None;
                }
            }
        }
    }

    fn on_rpc(&mut self, msg: Message, now: f64) {
        match msg {
            Message::AssignTask { task, executor } => self.start_task(task, executor, now),
            Message::PoolSizeChanged { executor, size } => {
                // Ignore announcements from executors the driver has
                // declared lost or blacklisted — honouring one would
                // silently reopen capacity on a node it gave up on.
                if !self.driver_sees_alive[executor] || self.blacklisted[executor] {
                    return;
                }
                self.driver_capacity[executor] = size;
                self.try_assign(now);
            }
            Message::Heartbeat { executor } => {
                self.last_heartbeat[executor] = now;
                if !self.driver_sees_alive[executor] && self.executor_alive[executor] {
                    // False-positive loss (heartbeat loss streak): the
                    // executor is still there — take it back.
                    self.register_executor(executor, now);
                }
            }
            Message::TaskFailed {
                task,
                executor,
                attempt,
            } => self.on_task_failed_rpc(task, executor, attempt, now),
        }
    }

    // ---- messaging -------------------------------------------------------

    /// Sends a driver↔executor message, applying the fault plan's extra
    /// delay. Messages are reliable (never dropped) except heartbeats,
    /// whose loss is decided at the sender.
    fn send_rpc(&mut self, msg: Message) {
        let mut delay = self.cfg.rpc_latency;
        if let Some(plan) = &self.cfg.fault_plan {
            if plan.message_delay_max > 0.0 {
                delay += self.fault_rng.uniform() * plan.message_delay_max;
            }
        }
        self.kernel
            .schedule_after(SimTime::from_seconds(delay), Event::Rpc(msg));
    }

    // ---- heartbeats and failure detection --------------------------------

    fn schedule_heartbeat_tick(&mut self, executor: usize) {
        let t = self.kernel.schedule_after(
            SimTime::from_seconds(self.cfg.fault_tolerance.heartbeat_interval),
            Event::HeartbeatTick { executor },
        );
        self.heartbeat_timers[executor] = Some(t);
    }

    fn on_heartbeat_tick(&mut self, executor: usize) {
        self.heartbeat_timers[executor] = None;
        if !self.executor_alive[executor] {
            return;
        }
        let loss_p = self
            .cfg
            .fault_plan
            .as_ref()
            .map_or(0.0, |p| p.heartbeat_loss_probability);
        let lost = loss_p > 0.0 && self.fault_rng.uniform() < loss_p;
        if !lost {
            self.send_rpc(Message::Heartbeat { executor });
        }
        self.schedule_heartbeat_tick(executor);
    }

    fn on_heartbeat_check(&mut self, now: f64) {
        self.heartbeat_check_timer = None;
        let timeout = self.cfg.fault_tolerance.heartbeat_timeout;
        for e in 0..self.cfg.nodes {
            if self.driver_sees_alive[e] && now - self.last_heartbeat[e] > timeout {
                self.on_executor_lost_detected(e, now);
                if self.error.is_some() {
                    return;
                }
            }
        }
        let t = self.kernel.schedule_after(
            SimTime::from_seconds(self.cfg.fault_tolerance.heartbeat_interval),
            Event::HeartbeatCheck,
        );
        self.heartbeat_check_timer = Some(t);
    }

    // ---- fault injection -------------------------------------------------

    /// The executor process dies. Nothing driver-side happens yet: its
    /// flows stop and its heartbeats cease, and the driver only reacts when
    /// the heartbeat timeout expires.
    fn on_executor_crash(&mut self, crash_idx: usize) {
        let crash = self
            .cfg
            .fault_plan
            .as_ref()
            .expect("crash event implies plan")
            .crashes[crash_idx];
        let e = crash.executor;
        if !self.executor_alive[e] {
            return; // overlapping crash on an already-dead executor
        }
        self.executor_alive[e] = false;
        // Silence (but do not kill) every attempt on the executor: the
        // driver still believes they run, and requeues them at detection.
        for t in 0..self.tasks.len() {
            for a in 0..self.tasks[t].attempts.len() {
                if self.tasks[t].attempts[a].live && self.tasks[t].attempts[a].executor == e {
                    self.silence_attempt(t, a);
                }
            }
        }
        if let Some(timer) = self.heartbeat_timers[e].take() {
            self.kernel.cancel_timer(timer);
        }
        let t = self.kernel.schedule_after(
            SimTime::from_seconds(crash.downtime),
            Event::ExecutorRestart { executor: e },
        );
        self.fault_timers.push(t);
    }

    /// The heartbeat timeout expired: the driver declares the executor
    /// lost, fails its attempts (requeued immediately — machine loss is
    /// not the task's fault, so no backoff), and restarts every other
    /// executor's monitoring interval so the redistribution spike does not
    /// feed phantom congestion into the hill climb.
    fn on_executor_lost_detected(&mut self, e: usize, now: f64) {
        self.record(TraceEvent::ExecutorFailed {
            executor: e,
            at: now,
        });
        self.driver_sees_alive[e] = false;
        self.driver_capacity[e] = 0;
        self.driver_running[e] = 0;
        for t in 0..self.tasks.len() {
            let lost: Vec<usize> = self.tasks[t]
                .attempts
                .iter()
                .enumerate()
                .filter(|(_, a)| a.live && a.executor == e)
                .map(|(i, _)| i)
                .collect();
            for a in lost {
                self.kill_attempt(t, a);
                self.record(TraceEvent::TaskFailed {
                    task: t,
                    attempt: a,
                    executor: e,
                    at: now,
                });
                self.stage_failed_attempts += 1;
                self.tasks[t].failures += 1;
                if !self.tasks[t].failed_on.contains(&e) {
                    self.tasks[t].failed_on.push(e);
                }
                if self.tasks[t].failures >= self.cfg.fault_tolerance.max_task_attempts {
                    let err = JobError::MaxAttemptsExceeded {
                        task: t,
                        stage: self.current_stage,
                        attempts: self.tasks[t].failures,
                    };
                    self.abort(err, now);
                    return;
                }
            }
            self.requeue_if_needed(t);
        }
        // Assignments in flight to the dead process never started; they
        // are recovered here and do not count as task failures.
        for t in std::mem::take(&mut self.lost_assignments[e]) {
            self.requeue_if_needed(t);
        }
        self.lost_task_counts[e] += self.executors[e].stats.tasks_finished;
        self.executors[e].begin_stage();
        self.executors[e].pool = crate::executor::SlotPool::new(self.cfg.default_threads());
        self.disturb_controllers_except(e, now);
        self.try_assign(now);
    }

    /// The replacement process comes up `downtime` seconds after the crash
    /// and registers with the driver.
    fn on_executor_restart(&mut self, executor: usize, now: f64) {
        if self.driver_sees_alive[executor] {
            // The replacement beat the driver's own detection: settle the
            // books for the old incarnation first.
            self.on_executor_lost_detected(executor, now);
            if self.error.is_some() {
                return;
            }
        }
        self.executor_alive[executor] = true;
        self.register_executor(executor, now);
        self.schedule_heartbeat_tick(executor);
    }

    /// A (re)registering executor rejoins the scheduler's rotation and
    /// re-announces its pool size over the §5.4 protocol; the driver only
    /// assigns once the `PoolSizeChanged` message lands.
    fn register_executor(&mut self, executor: usize, now: f64) {
        self.record(TraceEvent::ExecutorRecovered { executor, at: now });
        self.driver_sees_alive[executor] = true;
        self.last_heartbeat[executor] = now;
        self.driver_running[executor] = 0;
        if self.blacklisted[executor] {
            self.driver_capacity[executor] = 0;
            return;
        }
        let spec = &self.job.stages[self.current_stage];
        let hint = (self.tasks.len() / self.cfg.nodes).max(1);
        let threads = match self.policy {
            ThreadPolicy::Adaptive(_) => {
                let controller = self.executors[executor]
                    .controller
                    .as_mut()
                    .expect("adaptive policy implies controller");
                controller.stage_started(now, Some(hint))
            }
            policy => policy.initial_threads(
                spec.info(self.current_stage),
                self.cfg.node_spec.cores,
                Some(hint),
            ),
        };
        self.executors[executor].begin_stage();
        self.executors[executor].pool.set_max_pool_size(threads);
        self.stage_decisions[executor].push(threads);
        self.send_rpc(Message::PoolSizeChanged {
            executor,
            size: threads,
        });
    }

    fn on_slowdown_start(&mut self, idx: usize) {
        let slow = self
            .cfg
            .fault_plan
            .as_ref()
            .expect("slowdown event implies plan")
            .slowdowns[idx];
        // The antagonist contends for the disk with `severity * 8` extra
        // read streams (the kernel has no mid-run capacity mutation, so
        // contention is modelled as competing flows).
        let streams = ((slow.severity * 8.0).ceil() as usize).max(1);
        let resource = self.cluster.node(slow.node).disk.resource();
        for _ in 0..streams {
            let flow = self.kernel.start_flow(
                resource,
                sae_storage::DiskClass::Read.flow_class(),
                ANTAGONIST_WORK,
                Event::BackgroundDone { bytes: 0.0 },
            );
            self.slowdown_flows[idx].push((resource, flow));
        }
        let t = self.kernel.schedule_after(
            SimTime::from_seconds(slow.duration),
            Event::SlowdownEnd { slowdown: idx },
        );
        self.fault_timers.push(t);
    }

    fn on_slowdown_end(&mut self, idx: usize) {
        for (resource, flow) in std::mem::take(&mut self.slowdown_flows[idx]) {
            let _ = self.kernel.cancel_flow(resource, flow);
        }
    }

    // ---- attempt bookkeeping ---------------------------------------------

    /// Cancels an attempt's in-flight work without marking it dead: used at
    /// crash time, when the driver must still discover the loss itself.
    fn silence_attempt(&mut self, task: usize, attempt: usize) {
        self.release_pressure(task, attempt);
        let flows = std::mem::take(&mut self.tasks[task].attempts[attempt].active_flows);
        for (resource, flow) in flows {
            let _ = self.kernel.cancel_flow(resource, flow);
        }
        if let Some(timer) = self.tasks[task].attempts[attempt].stall_timer.take() {
            self.kernel.cancel_timer(timer);
        }
    }

    fn kill_attempt(&mut self, task: usize, attempt: usize) {
        self.silence_attempt(task, attempt);
        self.tasks[task].attempts[attempt].live = false;
    }

    fn requeue_if_needed(&mut self, task_id: usize) {
        let t = &mut self.tasks[task_id];
        if t.completed || t.queued || t.has_live_attempt() {
            return;
        }
        t.queued = true;
        self.sched.push(task_id, t.preferred_nodes.as_slice());
    }

    /// Feeds the executor's controller a fresh snapshot so it restarts its
    /// current monitoring interval — the interval-poisoning rule: intervals
    /// spanning an executor loss, a task failure, or a cancelled clone do
    /// not enter the knowledge base.
    fn disturb_controller(&mut self, executor: usize, now: f64) {
        if self.executors[executor].controller.is_none() {
            return;
        }
        let stats = self.executors[executor].stats;
        let disk = self.cluster.node(executor).disk.resource();
        let disk_busy = self.kernel.usage(disk).busy_seconds
            - self.stage_usage_start.disk[executor].busy_seconds;
        let snapshot = sae_core::ProbeSnapshot {
            epoll_wait: stats.epoll_wait,
            io_bytes: stats.io_bytes,
            disk_busy,
        };
        if let Some(c) = self.executors[executor].controller.as_mut() {
            c.interval_disturbed(now, snapshot);
        }
    }

    fn disturb_controllers_except(&mut self, except: usize, now: f64) {
        for e in 0..self.cfg.nodes {
            if e != except && self.executor_alive[e] && self.driver_sees_alive[e] {
                self.disturb_controller(e, now);
            }
        }
    }

    // ---- stage lifecycle -------------------------------------------------

    fn start_stage(&mut self, stage_id: usize) {
        let spec = &self.job.stages[stage_id];
        self.current_stage = stage_id;
        self.stage_started_at = self.kernel.now().seconds();
        self.stage_disk_read = 0.0;
        self.stage_disk_write = 0.0;
        self.stage_shuffle = 0.0;
        self.stage_series.clear();
        self.stage_attempts = 0;
        self.stage_failed_attempts = 0;
        self.stage_spec_launched = 0;
        self.stage_spec_wins = 0;
        self.stage_attempt_durations.clear();
        self.stage_usage_start = self.snapshot_usage();

        let task_count = self.task_count(spec, stage_id);
        let hint = (task_count / self.cfg.nodes).max(1);
        let now = self.stage_started_at;
        self.lost_task_counts = vec![0; self.cfg.nodes];
        // Failure counts reset at stage boundaries (as in Spark's per-stage
        // blacklisting): only *repeated* failures within one stage ban an
        // executor, a lifetime tally would eventually ban every node.
        self.executor_task_failures = vec![0; self.cfg.nodes];
        for e in 0..self.cfg.nodes {
            // Stats reset unconditionally: a lost or blacklisted executor
            // must not carry last stage's counters into this stage's report.
            self.executors[e].begin_stage();
            if !self.driver_sees_alive[e] || self.blacklisted[e] {
                self.driver_capacity[e] = 0;
                self.stage_decisions[e] = Vec::new();
                continue;
            }
            let threads = match self.policy {
                ThreadPolicy::Adaptive(_) => {
                    let controller = self.executors[e]
                        .controller
                        .as_mut()
                        .expect("adaptive policy implies controller");
                    controller.stage_started(now, Some(hint))
                }
                policy => policy.initial_threads(
                    spec.info(stage_id),
                    self.cfg.node_spec.cores,
                    Some(hint),
                ),
            };
            self.executors[e].pool.set_max_pool_size(threads);
            self.driver_capacity[e] = threads;
            self.stage_decisions[e] = vec![threads];
        }

        // Create tasks with locality preferences. Replica lists are shared
        // (`Arc`) — one allocation per distinct block, not one per task.
        let blocks: Option<Vec<std::sync::Arc<Vec<usize>>>> = if spec.read_mb > 0.0 {
            let file = self
                .dfs
                .file(&format!("{}/stage{}/input", self.job.name, stage_id))
                .expect("input file created at run start");
            Some(
                file.blocks
                    .iter()
                    .map(|b| std::sync::Arc::new(b.replicas.clone()))
                    .collect(),
            )
        } else {
            None
        };
        let all_nodes = std::sync::Arc::new((0..self.cfg.nodes).collect::<Vec<usize>>());
        self.tasks.clear();
        self.sched.reset(task_count, self.cfg.nodes);
        self.spec_candidates.clear();
        for t in 0..task_count {
            let preferred = match &blocks {
                Some(blocks) => std::sync::Arc::clone(&blocks[t % blocks.len()]),
                None => std::sync::Arc::clone(&all_nodes),
            };
            self.sched.push(t, preferred.as_slice());
            self.tasks.push(TaskState::new(stage_id, preferred));
        }
        self.stage_tasks_remaining = task_count;
        self.record(TraceEvent::StageStarted {
            stage: stage_id,
            at: now,
        });
        self.try_assign(now);
    }

    fn task_count(&self, spec: &StageSpec, stage_id: usize) -> usize {
        if let Some(tasks) = spec.tasks {
            return tasks;
        }
        // Pure ingest stages get one task per block; shuffle consumers use
        // the configured reduce-partition count even when they also read
        // spilled cache data.
        if spec.read_mb > 0.0 && spec.shuffle_in_mb == 0.0 {
            let file = self
                .dfs
                .file(&format!("{}/stage{}/input", self.job.name, stage_id))
                .expect("input file created at run start");
            return file.blocks.len();
        }
        ((self.cfg.total_cores() as f64 * self.cfg.shuffle_partitions_per_core).round() as usize)
            .max(1)
    }

    fn finish_stage(&mut self, now: f64) {
        let stage_id = self.current_stage;
        let spec = &self.job.stages[stage_id];
        let duration = (now - self.stage_started_at).max(1e-9);
        let end_usage = self.snapshot_usage();
        let nodes = self.cfg.nodes as f64;
        let cores = self.cfg.node_spec.cores as f64;

        let mut cpu_busy = 0.0;
        let mut iowait = 0.0;
        let mut disk_util = 0.0;
        for n in 0..self.cfg.nodes {
            let cpu_work = end_usage.cpu[n].work_done - self.stage_usage_start.cpu[n].work_done;
            let busy = (cpu_work / (cores * duration)).clamp(0.0, 1.0);
            let io_flow_seconds = (end_usage.disk[n].flow_seconds
                - self.stage_usage_start.disk[n].flow_seconds)
                + (end_usage.nic[n].flow_seconds - self.stage_usage_start.nic[n].flow_seconds)
                + (end_usage.serve[n].flow_seconds - self.stage_usage_start.serve[n].flow_seconds);
            let wait = (io_flow_seconds / (cores * duration))
                .min(1.0 - busy)
                .max(0.0);
            let util = ((end_usage.disk[n].busy_seconds
                - self.stage_usage_start.disk[n].busy_seconds)
                / duration)
                .clamp(0.0, 1.0);
            cpu_busy += busy;
            iowait += wait;
            disk_util += util;
        }

        // Close every controller's adaptation episode before reading its
        // journal: a stage that ran out of tasks mid-climb still gets a
        // terminal Hold record.
        for e in 0..self.cfg.nodes {
            if let Some(c) = self.executors[e].controller.as_mut() {
                c.finalize_stage(now);
            }
        }
        let executors: Vec<ExecutorStageReport> = (0..self.cfg.nodes)
            .map(|e| {
                let state = &self.executors[e];
                ExecutorStageReport {
                    executor: e,
                    final_threads: state.pool.max_pool_size(),
                    // Moved, not cloned: `start_stage` rebuilds the trace
                    // for every executor before the next stage runs.
                    decisions: std::mem::take(&mut self.stage_decisions[e]),
                    epoll_wait: state.stats.epoll_wait,
                    io_bytes: state.stats.io_bytes,
                    tasks: state.stats.tasks_finished + self.lost_task_counts[e],
                    intervals: state
                        .controller
                        .as_ref()
                        .map(|c| c.history().iter().map(|&r| r.into()).collect())
                        .unwrap_or_default(),
                    // Drain (journals accumulate across stages; each stage
                    // report keeps only its own records).
                    journal: state
                        .controller
                        .as_ref()
                        .map(|c| c.journal().take())
                        .unwrap_or_default(),
                }
            })
            .collect();
        let threads_used = executors.iter().map(|e| e.final_threads).sum();

        self.stage_reports.push(StageReport {
            stage_id,
            name: spec.name.clone(),
            kind: match spec.kind() {
                sae_core::StageKind::Io => "io",
                sae_core::StageKind::Generic => "generic",
            },
            started_at: self.stage_started_at,
            duration,
            tasks: self.tasks.len(),
            attempts: self.stage_attempts,
            failed_attempts: self.stage_failed_attempts,
            speculative_launched: self.stage_spec_launched,
            speculative_wins: self.stage_spec_wins,
            avg_cpu_busy: cpu_busy / nodes,
            avg_cpu_iowait: iowait / nodes,
            avg_disk_util: disk_util / nodes,
            disk_read_mb: self.stage_disk_read,
            disk_write_mb: self.stage_disk_write,
            shuffle_mb: self.stage_shuffle,
            executors,
            threads_used,
            // Moved, not cloned: `start_stage` clears the series buffer.
            disk_throughput_series: std::mem::take(&mut self.stage_series),
        });

        self.record(TraceEvent::StageFinished {
            stage: stage_id,
            at: now,
        });
        if stage_id + 1 < self.job.stages.len() {
            self.start_stage(stage_id + 1);
        } else {
            self.job_done = true;
            self.job_done_at = now;
            self.terminate();
        }
    }

    /// Cancels every pending engine-owned timer and antagonist flow so the
    /// kernel drains to idle after completion or abort.
    fn terminate(&mut self) {
        if let Some(timer) = self.sample_timer.take() {
            self.kernel.cancel_timer(timer);
        }
        if let Some(timer) = self.heartbeat_check_timer.take() {
            self.kernel.cancel_timer(timer);
        }
        for e in 0..self.cfg.nodes {
            if let Some(timer) = self.heartbeat_timers[e].take() {
                self.kernel.cancel_timer(timer);
            }
        }
        for timer in std::mem::take(&mut self.fault_timers) {
            self.kernel.cancel_timer(timer);
        }
        for flows in &mut self.slowdown_flows {
            for (resource, flow) in std::mem::take(flows) {
                let _ = self.kernel.cancel_flow(resource, flow);
            }
        }
    }

    /// Fails the job cleanly: records the error, kills all running
    /// attempts, and lets the kernel drain.
    fn abort(&mut self, err: JobError, now: f64) {
        self.error = Some(err);
        self.job_done = true;
        self.job_done_at = now;
        for t in 0..self.tasks.len() {
            let live: Vec<usize> = self.tasks[t].live_attempts().collect();
            for a in live {
                self.kill_attempt(t, a);
            }
        }
        self.terminate();
    }

    // ---- task lifecycle --------------------------------------------------

    /// Rebuilds the free-slot worklist: every executor the driver would
    /// assign to (live, not blacklisted, spare capacity), in executor
    /// order, with its current slack. Eligibility can only shrink while a
    /// scheduling round runs — capacity and liveness change via RPCs, never
    /// mid-round — so consumers just decrement the slack they use.
    fn rebuild_free_slots(&mut self) {
        self.free_slots.clear();
        for e in 0..self.cfg.nodes {
            if !self.driver_sees_alive[e] || self.blacklisted[e] {
                continue;
            }
            let free = self.driver_capacity[e].saturating_sub(self.driver_running[e]);
            if free > 0 {
                self.free_slots.push((e, free));
            }
        }
    }

    /// Assigns pending tasks to live executors with free capacity (driver
    /// view), preferring data-local placement and avoiding executors the
    /// task already failed on.
    ///
    /// Executors are swept round-robin, one task per executor per round
    /// (the pre-index scan's order, preserved exactly); per-executor task
    /// selection is the indexed queue's amortized-O(1) [`Scheduler::pick`].
    /// All exits go through the single check at the bottom of the round —
    /// queue drained, slots exhausted, or nothing assignable.
    fn try_assign(&mut self, _now: f64) {
        self.rebuild_free_slots();
        loop {
            let mut assigned_any = false;
            for i in 0..self.free_slots.len() {
                if self.sched.is_empty() {
                    break;
                }
                let (e, free) = self.free_slots[i];
                if free == 0 {
                    continue;
                }
                let tasks = &self.tasks;
                let task = self
                    .sched
                    .pick(
                        e,
                        |t| tasks[t].preferred_nodes.contains(&e),
                        |t| tasks[t].failed_on.contains(&e),
                    )
                    .expect("non-empty queue always yields a task");
                self.free_slots[i].1 = free - 1;
                self.tasks[task].queued = false;
                self.driver_running[e] += 1;
                self.send_rpc(Message::AssignTask { task, executor: e });
                assigned_any = true;
            }
            if self.sched.is_empty() || !assigned_any {
                return;
            }
        }
    }

    /// An `AssignTask` RPC arrived: materialise an attempt and start it.
    fn start_task(&mut self, task_id: usize, executor: usize, now: f64) {
        if self.tasks[task_id].completed {
            // A speculative clone landed after the task already finished.
            self.driver_running[executor] = self.driver_running[executor].saturating_sub(1);
            self.try_assign(now);
            return;
        }
        if !self.driver_sees_alive[executor] || self.blacklisted[executor] {
            // The driver gave up on the executor while the assignment was
            // in flight.
            self.driver_running[executor] = self.driver_running[executor].saturating_sub(1);
            self.requeue_if_needed(task_id);
            self.try_assign(now);
            return;
        }
        if !self.executor_alive[executor] {
            // The process is dead but the driver has not noticed yet; the
            // assignment evaporates and is recovered at detection time.
            self.lost_assignments[executor].push(task_id);
            return;
        }
        let stage_id = self.tasks[task_id].stage;
        let spec = &self.job.stages[stage_id];
        let task_count = self.tasks.len().max(1) as f64;
        let read_local = self.tasks[task_id].preferred_nodes.contains(&executor);
        let read_source = if read_local || spec.read_mb == 0.0 {
            executor
        } else {
            // Remote read: pull from a random replica holder.
            let replicas = &self.tasks[task_id].preferred_nodes;
            replicas[self.rng.index(replicas.len())]
        };
        // Reused scratch: one fetch-source buffer serves every assignment.
        self.fetch_sources_buf.clear();
        if spec.shuffle_in_mb > 0.0 {
            let f = self.cfg.fetch_parallelism.min(self.cfg.nodes);
            self.fetch_sources_buf
                .extend((0..f).map(|k| (task_id + k) % self.cfg.nodes));
        }
        let cpu_total = spec.cpu_per_mb * spec.processed_mb() + spec.base_cpu_per_task * task_count;
        let plan = TaskPlan {
            read_mb: spec.read_mb / task_count,
            read_source,
            fetch_mb: spec.shuffle_in_mb / task_count,
            fetch_sources: &self.fetch_sources_buf,
            cpu_sec: cpu_total / task_count,
            spill_mb: spec.shuffle_out_mb / task_count,
            output_mb: spec.output_mb / task_count,
            chunks: self.cfg.chunks_per_task,
            node: executor,
            seed: self.cfg.seed ^ (task_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let speculative = self.tasks[task_id].has_live_attempt();
        let attempt_idx = self.tasks[task_id].attempts.len();
        let phases = plan.build_phases_with(&mut self.chunk_weights_buf);
        let mut attempt = AttemptState::new(executor, phases, now, speculative);
        let fail_p = self
            .cfg
            .fault_plan
            .as_ref()
            .map_or(0.0, |p| p.task_failure_probability);
        if fail_p > 0.0 && self.fault_rng.uniform() < fail_p {
            let phases = attempt.phases.len();
            attempt.fail_after_phase = Some(self.fault_rng.index(phases));
        }
        self.tasks[task_id].attempts.push(attempt);
        if !speculative && !self.tasks[task_id].speculated {
            // The task now has exactly one live, non-speculative attempt:
            // it may become a straggler. (Pruned lazily once it completes
            // or gets a clone.)
            self.spec_candidates.insert(task_id);
        }
        self.executors[executor].pool.task_started();
        self.stage_attempts += 1;
        self.record(TraceEvent::TaskStarted {
            task: task_id,
            attempt: attempt_idx,
            executor,
            speculative,
            at: now,
        });
        self.start_phase(task_id, attempt_idx, now);
    }

    fn resolve(&self, target: FlowTarget) -> (ResourceId, u8) {
        match target {
            FlowTarget::Cpu { node } => (self.cluster.node(node).cpu, 0),
            FlowTarget::Disk { node, class } => {
                (self.cluster.node(node).disk.resource(), class.flow_class())
            }
            FlowTarget::Nic { node } => (self.cluster.node(node).nic, 0),
            FlowTarget::ServePath { node } => (self.cluster.node(node).serve, 0),
        }
    }

    fn start_phase(&mut self, task_id: usize, attempt: usize, now: f64) {
        let a = &mut self.tasks[task_id].attempts[attempt];
        let phase_idx = a.current_phase;
        a.outstanding = a.phases[phase_idx].flows.len();
        a.phase_started_at = now;
        // Incast model: register fetch pressure on every serving node; if
        // any source is over the free threshold, the request stalls
        // (TCP retransmission timeouts) before any byte moves. The stall is
        // part of the phase and therefore counts into epoll wait.
        let mut max_pressure = 0usize;
        let mut registered = false;
        for flow in &a.phases[phase_idx].flows {
            if let FlowTarget::ServePath { node } = flow.target {
                self.serve_pressure[node] += 1;
                registered = true;
                max_pressure = max_pressure.max(self.serve_pressure[node]);
            }
        }
        a.pressure_registered = registered;
        if max_pressure > self.cfg.incast_free_requests {
            let over = (max_pressure - self.cfg.incast_free_requests) as f64;
            let stall = self.cfg.incast_stall_base * (over / 16.0).powf(1.5);
            if stall > 0.0 {
                let timer = self.kernel.schedule_after(
                    SimTime::from_seconds(stall),
                    Event::StallOver {
                        task: task_id,
                        attempt,
                    },
                );
                a.stall_timer = Some(timer);
                return;
            }
        }
        self.start_phase_flows(task_id, attempt);
    }

    fn start_phase_flows(&mut self, task_id: usize, attempt: usize) {
        let phase_idx = self.tasks[task_id].attempts[attempt].current_phase;
        self.tasks[task_id].attempts[attempt].active_flows.clear();
        let nflows = self.tasks[task_id].attempts[attempt].phases[phase_idx]
            .flows
            .len();
        for i in 0..nflows {
            let flow = self.tasks[task_id].attempts[attempt].phases[phase_idx].flows[i];
            let (resource, class) = self.resolve(flow.target);
            let handle = self.kernel.start_flow(
                resource,
                class,
                flow.work,
                Event::PhaseDone {
                    task: task_id,
                    attempt,
                },
            );
            self.tasks[task_id].attempts[attempt]
                .active_flows
                .push((resource, handle));
        }
    }

    /// Releases the serve-path pressure the attempt's current phase holds.
    fn release_pressure(&mut self, task_id: usize, attempt: usize) {
        let a = &mut self.tasks[task_id].attempts[attempt];
        if !a.pressure_registered {
            return;
        }
        a.pressure_registered = false;
        let phase_idx = a.current_phase;
        for flow in &a.phases[phase_idx].flows {
            if let FlowTarget::ServePath { node } = flow.target {
                debug_assert!(self.serve_pressure[node] > 0);
                self.serve_pressure[node] -= 1;
            }
        }
    }

    /// One flow of an attempt's current phase completed.
    fn on_phase_flow_done(&mut self, task_id: usize, attempt: usize, now: f64) {
        self.tasks[task_id].attempts[attempt].outstanding -= 1;
        if self.tasks[task_id].attempts[attempt].outstanding > 0 {
            return;
        }
        // Whole phase complete: account it (flows are `Copy`, read in
        // place — no per-phase clone on this per-event path).
        let executor = self.tasks[task_id].attempts[attempt].executor;
        let phase_idx = self.tasks[task_id].attempts[attempt].current_phase;
        let phase_duration = now - self.tasks[task_id].attempts[attempt].phase_started_at;
        self.release_pressure(task_id, attempt);
        self.tasks[task_id].attempts[attempt].active_flows.clear();
        if self.tasks[task_id].attempts[attempt].phases[phase_idx].is_io() {
            self.executors[executor].stats.epoll_wait += phase_duration;
        }
        let nflows = self.tasks[task_id].attempts[attempt].phases[phase_idx]
            .flows
            .len();
        for i in 0..nflows {
            let flow = self.tasks[task_id].attempts[attempt].phases[phase_idx].flows[i];
            match flow.accounting {
                Accounting::Cpu => {}
                Accounting::DiskRead => {
                    self.stage_disk_read += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
                Accounting::ShuffleServe => {
                    self.stage_disk_read += flow.work;
                }
                Accounting::DiskWrite => {
                    self.stage_disk_write += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
                Accounting::OutputWrite => {
                    self.stage_disk_write += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                    self.start_replication(executor, flow.work);
                }
                Accounting::Net => {
                    self.stage_shuffle += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
            }
        }
        // Injected transient fault: the attempt dies after this phase.
        if self.tasks[task_id].attempts[attempt].fail_after_phase == Some(phase_idx) {
            self.fail_attempt_locally(task_id, attempt, executor, now);
            return;
        }
        // Advance the attempt.
        self.tasks[task_id].attempts[attempt].current_phase += 1;
        if self.tasks[task_id].attempts[attempt].current_phase
            < self.tasks[task_id].attempts[attempt].phases.len()
        {
            self.start_phase(task_id, attempt, now);
        } else {
            self.on_attempt_finished(task_id, attempt, executor, now);
        }
    }

    /// The executor-side half of a transient failure: free the slot,
    /// restart the poisoned monitoring interval, and report to the driver.
    fn fail_attempt_locally(&mut self, task_id: usize, attempt: usize, executor: usize, now: f64) {
        self.tasks[task_id].attempts[attempt].live = false;
        self.executors[executor].pool.task_finished();
        self.disturb_controller(executor, now);
        self.send_rpc(Message::TaskFailed {
            task: task_id,
            executor,
            attempt,
        });
    }

    /// The driver learns of a transient attempt failure: it books the
    /// failure, possibly blacklists the executor, and schedules a retry
    /// with exponential backoff (or aborts when the budget is exhausted).
    fn on_task_failed_rpc(&mut self, task_id: usize, executor: usize, attempt: usize, now: f64) {
        self.driver_running[executor] = self.driver_running[executor].saturating_sub(1);
        self.record(TraceEvent::TaskFailed {
            task: task_id,
            attempt,
            executor,
            at: now,
        });
        self.stage_failed_attempts += 1;
        self.tasks[task_id].failures += 1;
        if !self.tasks[task_id].failed_on.contains(&executor) {
            self.tasks[task_id].failed_on.push(executor);
        }
        self.executor_task_failures[executor] += 1;
        if !self.tasks[task_id].completed
            && self.tasks[task_id].failures >= self.cfg.fault_tolerance.max_task_attempts
        {
            let err = JobError::MaxAttemptsExceeded {
                task: task_id,
                stage: self.tasks[task_id].stage,
                attempts: self.tasks[task_id].failures,
            };
            self.abort(err, now);
            return;
        }
        self.maybe_blacklist(executor, now);
        if !self.tasks[task_id].completed
            && !self.tasks[task_id].queued
            && !self.tasks[task_id].has_live_attempt()
        {
            let base = self.cfg.fault_tolerance.retry_backoff_base;
            if base > 0.0 {
                let backoff = base * 2f64.powi(self.tasks[task_id].failures as i32 - 1);
                let timer = self.kernel.schedule_after(
                    SimTime::from_seconds(backoff),
                    Event::RetryReady { task: task_id },
                );
                self.fault_timers.push(timer);
            } else {
                self.requeue_if_needed(task_id);
            }
        }
        self.try_assign(now);
    }

    /// Blacklists an executor after repeated task failures — never the
    /// last usable one, which would wedge the job.
    fn maybe_blacklist(&mut self, executor: usize, now: f64) {
        if self.blacklisted[executor] {
            return;
        }
        if self.executor_task_failures[executor] < self.cfg.fault_tolerance.blacklist_after {
            return;
        }
        let usable_elsewhere = (0..self.cfg.nodes)
            .filter(|&e| e != executor && !self.blacklisted[e] && self.driver_sees_alive[e])
            .count();
        if usable_elsewhere == 0 {
            return;
        }
        self.blacklisted[executor] = true;
        self.blacklist_order.push(executor);
        self.driver_capacity[executor] = 0;
        self.record(TraceEvent::ExecutorBlacklisted { executor, at: now });
    }

    /// Speculative re-execution, evaluated at each metrics tick: once most
    /// of the stage has completed, any attempt running far beyond the
    /// median duration is cloned onto another executor; first finisher
    /// wins, the loser is cancelled.
    ///
    /// The median is maintained incrementally ([`RunningMedian`], O(1) per
    /// query), stragglers come from the candidate index instead of a scan
    /// over every task, and clone targets come from the same free-slot
    /// worklist the assignment sweep uses.
    fn maybe_speculate(&mut self, now: f64) {
        let enabled = self.faults_enabled() || self.cfg.fault_tolerance.speculation;
        if !enabled || self.job_done || self.tasks.is_empty() {
            return;
        }
        let total = self.tasks.len();
        let done = total - self.stage_tasks_remaining;
        if (done as f64) < self.cfg.fault_tolerance.speculation_quantile * total as f64 {
            return;
        }
        let Some(median) = self.stage_attempt_durations.median() else {
            return;
        };
        let threshold = self.cfg.fault_tolerance.speculation_multiplier * median;
        self.rebuild_free_slots();
        // Candidates in ascending task id — the order the old full scan
        // visited stragglers in.
        let mut candidates = std::mem::take(&mut self.spec_scratch);
        candidates.clear();
        candidates.extend(self.spec_candidates.iter().copied());
        for t in candidates.drain(..) {
            let current = {
                let task = &self.tasks[t];
                if task.completed || task.speculated {
                    // Permanently ineligible: drop from the index.
                    self.spec_candidates.remove(&t);
                    continue;
                }
                if task.queued {
                    continue;
                }
                let mut live = task.live_attempts();
                let (Some(a), None) = (live.next(), live.next()) else {
                    continue;
                };
                drop(live);
                if now - task.attempts[a].started_at <= threshold {
                    continue;
                }
                task.attempts[a].executor
            };
            // Clone onto the executor with the most free capacity (lowest
            // index on ties): first strict maximum over the ascending
            // worklist, skipping the straggler's own executor.
            let mut best: Option<usize> = None;
            let mut best_free = 0usize;
            for (i, &(e, free)) in self.free_slots.iter().enumerate() {
                if e != current && free > best_free {
                    best = Some(i);
                    best_free = free;
                }
            }
            let Some(slot) = best else { continue };
            let target = self.free_slots[slot].0;
            self.free_slots[slot].1 -= 1;
            self.spec_candidates.remove(&t);
            self.tasks[t].speculated = true;
            self.stage_spec_launched += 1;
            self.driver_running[target] += 1;
            self.send_rpc(Message::AssignTask {
                task: t,
                executor: target,
            });
        }
        self.spec_scratch = candidates;
    }

    /// Fire-and-forget replica writes on other nodes' disks.
    fn start_replication(&mut self, writer: usize, bytes: f64) {
        let extra = self.cfg.output_replication.min(self.cfg.nodes) - 1;
        for k in 1..=extra {
            let node = (writer + k) % self.cfg.nodes;
            let resource = self.cluster.node(node).disk.resource();
            self.stage_disk_write += bytes;
            self.kernel.start_flow(
                resource,
                sae_storage::DiskClass::Write.flow_class(),
                bytes,
                Event::BackgroundDone { bytes },
            );
        }
    }

    fn on_attempt_finished(&mut self, task_id: usize, attempt: usize, executor: usize, now: f64) {
        self.tasks[task_id].attempts[attempt].live = false;
        self.executors[executor].pool.task_finished();
        self.driver_running[executor] = self.driver_running[executor].saturating_sub(1);
        if self.tasks[task_id].completed {
            return;
        }
        self.tasks[task_id].completed = true;
        // Cancel the losing twin(s), if any; their slots free immediately.
        let losers: Vec<usize> = self.tasks[task_id].live_attempts().collect();
        for l in losers {
            let loser_exec = self.tasks[task_id].attempts[l].executor;
            self.kill_attempt(task_id, l);
            if self.executor_alive[loser_exec] {
                self.executors[loser_exec].pool.task_finished();
                self.disturb_controller(loser_exec, now);
            }
            self.driver_running[loser_exec] = self.driver_running[loser_exec].saturating_sub(1);
        }
        self.record(TraceEvent::TaskFinished {
            task: task_id,
            attempt,
            executor,
            at: now,
        });
        if self.tasks[task_id].attempts[attempt].speculative {
            self.record(TraceEvent::SpeculativeWon {
                task: task_id,
                attempt,
                executor,
                at: now,
            });
            self.stage_spec_wins += 1;
        }
        self.executors[executor].stats.tasks_finished += 1;
        self.stage_tasks_remaining -= 1;
        self.stage_attempt_durations
            .push(now - self.tasks[task_id].attempts[attempt].started_at);

        // MAPE-K: consult the controller with cumulative stage counters
        // (including the disk-busy seconds behind the alternative
        // disk-utilisation signal).
        let stats = self.executors[executor].stats;
        let disk = self.cluster.node(executor).disk.resource();
        let disk_busy = self.kernel.usage(disk).busy_seconds
            - self.stage_usage_start.disk[executor].busy_seconds;
        let snapshot = sae_core::ProbeSnapshot {
            epoll_wait: stats.epoll_wait,
            io_bytes: stats.io_bytes,
            disk_busy,
        };
        let (decision, closed_interval) = match self.executors[executor].controller.as_mut() {
            Some(c) => {
                let before = c.history().len();
                let decision = c.task_finished_probe(now, snapshot);
                let closed = (c.history().len() > before)
                    .then(|| c.history().last().copied())
                    .flatten();
                (decision, closed)
            }
            None => (None, None),
        };
        if let Some(interval) = closed_interval {
            // The ζ_j counter-track sample behind the (possible) resize.
            self.record(TraceEvent::IntervalClosed {
                executor,
                threads: interval.threads,
                zeta: interval.zeta,
                at: now,
            });
        }
        if let Some(new_size) = decision {
            // Execute locally, then notify the driver over RPC (§5.4).
            self.record(TraceEvent::PoolResized {
                executor,
                to: new_size,
                at: now,
            });
            self.executors[executor].pool.set_max_pool_size(new_size);
            self.stage_decisions[executor].push(new_size);
            self.send_rpc(Message::PoolSizeChanged {
                executor,
                size: new_size,
            });
        }

        if self.stage_tasks_remaining == 0 {
            self.finish_stage(now);
        } else {
            self.try_assign(now);
        }
    }

    // ---- metrics ---------------------------------------------------------

    fn snapshot_usage(&mut self) -> UsageSnapshot {
        let mut snap = UsageSnapshot::default();
        for n in 0..self.cfg.nodes {
            let node = self.cluster.node(n).clone();
            snap.cpu.push(self.kernel.usage(node.cpu));
            snap.disk.push(self.kernel.usage(node.disk.resource()));
            snap.nic.push(self.kernel.usage(node.nic));
            snap.serve.push(self.kernel.usage(node.serve));
        }
        snap
    }

    fn schedule_sample(&mut self) {
        let timer = self.kernel.schedule_after(
            SimTime::from_seconds(self.cfg.sample_interval),
            Event::Sample,
        );
        self.sample_timer = Some(timer);
    }

    fn take_sample(&mut self, now: f64) {
        let dt = now - self.last_sample_time;
        if dt <= 0.0 {
            return;
        }
        let disks: Vec<ResourceUsage> = (0..self.cfg.nodes)
            .map(|n| {
                let r = self.cluster.node(n).disk.resource();
                self.kernel.usage(r)
            })
            .collect();
        if !self.last_sample_usage.is_empty() {
            let total: f64 = disks
                .iter()
                .zip(&self.last_sample_usage)
                .map(|(cur, prev)| (cur.work_done - prev.work_done) / dt)
                .sum();
            self.stage_series.push((now - self.stage_started_at, total));
        }
        self.last_sample_usage = disks;
        self.last_sample_time = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultPlan;
    use crate::job::StageSpec;
    use sae_core::MapeConfig;

    fn small_config() -> EngineConfig {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.nodes = 2;
        cfg.block_size_mb = 64;
        cfg
    }

    fn simple_job() -> JobSpec {
        JobSpec::builder("test")
            .stage(StageSpec::read("ingest", 512.0).cpu_per_mb(0.002))
            .stage(
                StageSpec::read("map", 512.0)
                    .cpu_per_mb(0.002)
                    .shuffle_out(256.0),
            )
            .stage(
                StageSpec::shuffle("reduce", 256.0)
                    .cpu_per_mb(0.002)
                    .write_output(256.0),
            )
            .build()
    }

    #[test]
    fn job_runs_to_completion() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_runtime > 0.0);
        for stage in &report.stages {
            assert!(stage.duration > 0.0);
            assert_eq!(
                stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                stage.tasks
            );
        }
    }

    #[test]
    fn io_accounting_matches_spec_volumes() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        // Stage 0: 512 MB read, no writes.
        assert!((report.stages[0].disk_read_mb - 512.0).abs() < 1.0);
        assert!(report.stages[0].disk_write_mb < 1.0);
        // Stage 1: 512 MB read + 256 MB spill.
        assert!((report.stages[1].disk_read_mb - 512.0).abs() < 1.0);
        assert!((report.stages[1].disk_write_mb - 256.0).abs() < 1.0);
        // Stage 2: 256 MB serve reads + 256 MB output write; 256 shuffled.
        assert!((report.stages[2].disk_read_mb - 256.0).abs() < 1.0);
        assert!((report.stages[2].disk_write_mb - 256.0).abs() < 1.0);
        assert!((report.stages[2].shuffle_mb - 256.0).abs() < 1.0);
    }

    #[test]
    fn default_policy_uses_all_cores_every_stage() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        for stage in &report.stages {
            assert_eq!(stage.threads_used, 2 * 32);
        }
    }

    #[test]
    fn static_policy_shrinks_io_stages_only() {
        let policy = ThreadPolicy::Static(sae_core::StaticPolicy::new(8));
        let report = Engine::new(small_config(), policy).run(&simple_job());
        // Stages 0, 1 read (I/O); stage 2 writes (I/O): all marked io here.
        assert_eq!(report.stages[0].threads_used, 2 * 8);
        assert_eq!(report.stages[2].threads_used, 2 * 8);
    }

    #[test]
    fn adaptive_policy_adapts_and_reports_intervals() {
        let cfg = small_config();
        // Large enough that each executor sees well over c_min*3 tasks.
        let job = JobSpec::builder("big-read")
            .stage(StageSpec::read("ingest", 8192.0).cpu_per_mb(0.002))
            .build();
        let policy = ThreadPolicy::Adaptive(MapeConfig::new(2, 32));
        let report = Engine::new(cfg, policy).run(&job);
        let stage0 = &report.stages[0];
        let any_intervals = stage0.executors.iter().any(|e| !e.intervals.is_empty());
        assert!(any_intervals, "adaptive run must record intervals");
        for e in &stage0.executors {
            assert!(e.final_threads >= 2 && e.final_threads <= 32);
            assert!(!e.decisions.is_empty());
            assert_eq!(e.decisions[0], 2, "adaptation starts at c_min");
        }
    }

    #[test]
    fn deterministic_runs() {
        let r1 = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        let r2 = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        assert_eq!(r1.total_runtime.to_bits(), r2.total_runtime.to_bits());
        assert_eq!(r1.stages.len(), r2.stages.len());
        for (a, b) in r1.stages.iter().zip(&r2.stages) {
            assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        }
    }

    #[test]
    fn utilisation_fractions_are_sane() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        for stage in &report.stages {
            assert!((0.0..=1.0).contains(&stage.avg_cpu_busy));
            assert!((0.0..=1.0).contains(&stage.avg_cpu_iowait));
            assert!((0.0..=1.0).contains(&stage.avg_disk_util));
            assert!(stage.avg_cpu_busy + stage.avg_cpu_iowait <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn traced_run_records_full_lifecycle() {
        let report_and_trace =
            Engine::new(small_config(), ThreadPolicy::Default).run_traced(&simple_job());
        let (report, trace) = report_and_trace;
        assert!(!trace.is_empty());
        // One start and one finish per stage.
        let stage_starts = trace
            .events()
            .iter()
            .filter(|e| matches!(e, crate::TraceEvent::StageStarted { .. }))
            .count();
        assert_eq!(stage_starts, report.stages.len());
        // Every task appears exactly once per executor count.
        let total_tasks: usize = report.stages.iter().map(|s| s.tasks).sum();
        let started: usize = trace.tasks_started_per_executor(report.nodes).iter().sum();
        assert_eq!(started, total_tasks);
        // The export is parseable-ish JSON.
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn traced_adaptive_run_records_resizes() {
        let job = JobSpec::builder("big-read")
            .stage(StageSpec::read("ingest", 8192.0).cpu_per_mb(0.002))
            .build();
        let policy = ThreadPolicy::Adaptive(MapeConfig::new(2, 32));
        let (_, trace) = Engine::new(small_config(), policy).run_traced(&job);
        let resizes: usize = (0..2).map(|e| trace.resizes_for(e).len()).sum();
        assert!(resizes >= 2, "adaptive run must record pool resizes");
    }

    #[test]
    fn output_replication_multiplies_writes() {
        let mut cfg = small_config();
        cfg.output_replication = 2;
        let job = JobSpec::builder("rep")
            .stage(StageSpec::read("r", 128.0).write_output(128.0))
            .build();
        let report = Engine::new(cfg, ThreadPolicy::Default).run(&job);
        // 128 local + 128 replica.
        assert!((report.stages[0].disk_write_mb - 256.0).abs() < 1.0);
    }

    #[test]
    fn read_tasks_run_data_local_under_full_replication() {
        // Replication = nodes: every block is local everywhere, so no
        // network traffic appears in a pure read stage.
        let job = JobSpec::builder("local")
            .stage(StageSpec::read("ingest", 1024.0))
            .build();
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&job);
        assert_eq!(report.stages[0].shuffle_mb, 0.0, "reads must be local");
    }

    #[test]
    fn partial_replication_causes_some_remote_reads() {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.block_size_mb = 64;
        cfg.input_replication = 1; // primaries only
        let job = JobSpec::builder("remote")
            .stage(StageSpec::read("ingest", 4096.0))
            .build();
        let report = Engine::new(cfg, ThreadPolicy::Default).run(&job);
        // The scheduler prefers local tasks, but the tail forces a few
        // remote reads, visible as network bytes.
        assert!(report.stages[0].shuffle_mb >= 0.0);
        // Read accounting still exact.
        assert!((report.stages[0].disk_read_mb - 4096.0).abs() < 1.0);
    }

    #[test]
    fn rpc_latency_delays_but_preserves_work() {
        let job = simple_job();
        let fast = Engine::new(small_config(), ThreadPolicy::Default).run(&job);
        let mut slow_cfg = small_config();
        slow_cfg.rpc_latency = 0.25; // pathological quarter-second RPCs
        let slow = Engine::new(slow_cfg, ThreadPolicy::Default).run(&job);
        assert!(slow.total_runtime > fast.total_runtime);
        for (a, b) in fast.stages.iter().zip(&slow.stages) {
            assert_eq!(a.tasks, b.tasks);
            assert!((a.disk_read_mb - b.disk_read_mb).abs() < 1e-6);
        }
    }

    #[test]
    fn stage_threads_label_matches_scheduler_view() {
        // The "x/128" labels of Figure 8 must reflect what the scheduler
        // ends the stage believing — the §5.4 protocol guarantee.
        let policy = ThreadPolicy::Static(sae_core::StaticPolicy::new(8));
        let report = Engine::new(small_config(), policy).run(&simple_job());
        for stage in &report.stages {
            let from_executors: usize = stage.executors.iter().map(|e| e.final_threads).sum();
            assert_eq!(stage.threads_used, from_executors);
        }
    }

    #[test]
    fn fewer_threads_help_io_heavy_stage_on_hdd() {
        // The core premise: on an HDD, a pure-read stage is faster with 8
        // threads than with 32.
        let job = JobSpec::builder("readonly")
            .stage(StageSpec::read("ingest", 4096.0).cpu_per_mb(0.001))
            .build();
        let cfg = small_config();
        let t32 = Engine::new(cfg.clone(), ThreadPolicy::Default)
            .run(&job)
            .total_runtime;
        let t8 = Engine::new(cfg, ThreadPolicy::Static(sae_core::StaticPolicy::new(8)))
            .run(&job)
            .total_runtime;
        assert!(
            t8 < t32,
            "8 threads should beat 32 on an I/O-bound HDD stage: {t8} vs {t32}"
        );
    }

    // ---- fault tolerance -------------------------------------------------

    #[test]
    fn try_run_matches_run_when_fault_free() {
        let engine = Engine::new(small_config(), ThreadPolicy::Default);
        let a = engine.try_run(&simple_job()).expect("fault-free run");
        let b = engine.run(&simple_job());
        assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
    }

    #[test]
    fn fault_plan_field_does_not_perturb_fault_free_stream() {
        // An engine carrying an *empty* fault plan pays for heartbeats but
        // must still complete with the exact task/byte accounting.
        let mut cfg = small_config();
        cfg.fault_plan = Some(FaultPlan::new(3));
        let report = Engine::new(cfg, ThreadPolicy::Default).run(&simple_job());
        let baseline = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        assert_eq!(report.stages.len(), baseline.stages.len());
        for (a, b) in report.stages.iter().zip(&baseline.stages) {
            assert_eq!(a.tasks, b.tasks);
            assert!((a.disk_read_mb - b.disk_read_mb).abs() < 1e-6);
            assert!((a.disk_write_mb - b.disk_write_mb).abs() < 1e-6);
        }
    }

    #[test]
    fn transient_failures_retry_and_complete() {
        let mut cfg = small_config();
        cfg.fault_plan = Some(FaultPlan::new(11).with_task_failures(0.2));
        let (report, trace) = Engine::new(cfg, ThreadPolicy::Default)
            .try_run_traced(&simple_job())
            .expect("retries must absorb a 20% transient rate");
        assert!(report.total_failed_attempts() > 0, "faults must fire");
        assert!(report.total_attempts() > report.stages.iter().map(|s| s.tasks).sum::<usize>());
        assert!(!trace.retried_tasks().is_empty());
        assert_eq!(trace.failed_attempts(), report.total_failed_attempts());
        // Every stage still accounts every task exactly once.
        for stage in &report.stages {
            assert_eq!(
                stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                stage.tasks
            );
        }
    }

    #[test]
    fn seeded_fault_runs_are_bit_identical() {
        let mut cfg = small_config();
        cfg.fault_plan = Some(
            FaultPlan::new(5)
                .with_task_failures(0.1)
                .with_message_delay(0.002)
                .with_heartbeat_loss(0.05),
        );
        let engine = Engine::new(cfg, ThreadPolicy::Default);
        let r1 = engine.try_run(&simple_job()).expect("completes");
        let r2 = engine.try_run(&simple_job()).expect("completes");
        assert_eq!(r1.total_runtime.to_bits(), r2.total_runtime.to_bits());
        assert_eq!(r1.total_attempts(), r2.total_attempts());
        assert_eq!(r1.total_failed_attempts(), r2.total_failed_attempts());
        for (a, b) in r1.stages.iter().zip(&r2.stages) {
            assert_eq!(a.duration.to_bits(), b.duration.to_bits());
            assert_eq!(a.disk_read_mb.to_bits(), b.disk_read_mb.to_bits());
        }
    }

    #[test]
    fn certain_failure_rate_aborts_cleanly() {
        let mut cfg = small_config();
        cfg.fault_plan = Some(FaultPlan::new(1).with_task_failures(0.97));
        cfg.fault_tolerance.retry_backoff_base = 0.05;
        let err = Engine::new(cfg, ThreadPolicy::Default)
            .try_run(&simple_job())
            .expect_err("a 97% failure rate must exhaust the retry budget");
        let JobError::MaxAttemptsExceeded { attempts, .. } = err;
        assert_eq!(attempts, 4);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn crash_is_detected_by_heartbeat_silence() {
        let mut cfg = small_config();
        cfg.fault_plan = Some(FaultPlan::new(2).with_crash(1, 3.0, 9.0));
        let (report, trace) = Engine::new(cfg.clone(), ThreadPolicy::Default)
            .try_run_traced(&simple_job())
            .expect("job survives one crash");
        let failed_at = trace
            .events()
            .iter()
            .find_map(|e| match *e {
                TraceEvent::ExecutorFailed { executor: 1, at } => Some(at),
                _ => None,
            })
            .expect("loss must be detected");
        // Detection is driven by heartbeat silence, never by an omniscient
        // failure signal: it fires strictly after the crash, once the gap
        // since the last pre-crash heartbeat exceeds the timeout.
        assert!(failed_at > 3.0, "detected at {failed_at}");
        let earliest =
            3.0 + cfg.fault_tolerance.heartbeat_timeout - cfg.fault_tolerance.heartbeat_interval;
        assert!(
            failed_at >= earliest,
            "detected at {failed_at}, before silence could exceed the timeout"
        );
        let recovered = trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::ExecutorRecovered { executor: 1, .. }));
        assert!(recovered, "replacement must re-register");
        // Lost attempts show up as failures and reruns.
        assert!(report.total_failed_attempts() > 0);
        assert!(!trace.retried_tasks().is_empty());
        for stage in &report.stages {
            assert_eq!(
                stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                stage.tasks
            );
        }
    }

    #[test]
    fn slowdown_stretches_the_stage() {
        let job = JobSpec::builder("readonly")
            .stage(StageSpec::read("ingest", 2048.0).cpu_per_mb(0.001))
            .build();
        let baseline = Engine::new(small_config(), ThreadPolicy::Default)
            .run(&job)
            .total_runtime;
        let mut cfg = small_config();
        cfg.fault_plan = Some(FaultPlan::new(4).with_slowdown(0, 5.0, 60.0, 1.0));
        let slowed = Engine::new(cfg, ThreadPolicy::Default)
            .try_run(&job)
            .expect("slowdown is not fatal")
            .total_runtime;
        assert!(
            slowed > baseline * 1.02,
            "antagonist traffic must cost runtime: {slowed} vs {baseline}"
        );
    }

    #[test]
    fn speculation_reruns_stragglers_under_slowdown() {
        let job = JobSpec::builder("readonly")
            .stage(StageSpec::read("ingest", 2048.0).cpu_per_mb(0.001))
            .build();
        let mut cfg = small_config();
        // A long severe slowdown turns node 0's tasks into stragglers.
        cfg.fault_plan = Some(FaultPlan::new(6).with_slowdown(0, 2.0, 500.0, 1.0));
        cfg.fault_tolerance.speculation_multiplier = 1.2;
        cfg.fault_tolerance.speculation_quantile = 0.5;
        let (report, trace) = Engine::new(cfg, ThreadPolicy::Default)
            .try_run_traced(&job)
            .expect("speculation keeps the job alive");
        let launched: usize = report.stages.iter().map(|s| s.speculative_launched).sum();
        assert!(launched > 0, "stragglers must be speculated");
        let wins: usize = report.stages.iter().map(|s| s.speculative_wins).sum();
        assert_eq!(wins, trace.speculative_wins());
    }

    // ---- indexed scheduler ----------------------------------------------

    #[test]
    fn assignment_exits_uniformly_when_queue_drains_mid_sweep() {
        // One task, two executors with plenty of slots: the queue drains at
        // the first executor of the very first sweep, so the rest of the
        // sweep (and every later `try_assign`) must flow through the same
        // exit path — no hang, no double assignment, and the lone task
        // lands on executor 0 (sweep order).
        let job = JobSpec::builder("tiny")
            .stage(StageSpec::compute("one").with_tasks(1))
            .build();
        let (report, trace) = Engine::new(small_config(), ThreadPolicy::Default).run_traced(&job);
        assert_eq!(report.stages[0].tasks, 1);
        assert_eq!(report.stages[0].attempts, 1);
        let per_exec = trace.tasks_started_per_executor(report.nodes);
        assert_eq!(per_exec, vec![1, 0], "sweep starts at executor 0");
    }

    #[test]
    fn indexed_scheduler_matches_reference_fault_free() {
        let indexed = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        let mut cfg = small_config();
        cfg.reference_scheduler = true;
        let reference = Engine::new(cfg, ThreadPolicy::Default).run(&simple_job());
        // `{:?}` of f64 is the shortest round-trip representation, so equal
        // debug strings mean bit-equal reports.
        assert_eq!(format!("{indexed:?}"), format!("{reference:?}"));
    }

    #[test]
    fn indexed_scheduler_matches_reference_under_faults_and_speculation() {
        let mut cfg = small_config();
        cfg.fault_plan = Some(
            FaultPlan::new(5)
                .with_task_failures(0.1)
                .with_crash(1, 3.0, 9.0)
                .with_message_delay(0.002)
                .with_heartbeat_loss(0.05),
        );
        cfg.fault_tolerance.speculation_multiplier = 1.2;
        cfg.fault_tolerance.speculation_quantile = 0.5;
        let (indexed, indexed_trace) = Engine::new(cfg.clone(), ThreadPolicy::Default)
            .try_run_traced(&simple_job())
            .expect("survives the plan");
        let mut ref_cfg = cfg;
        ref_cfg.reference_scheduler = true;
        let (reference, reference_trace) = Engine::new(ref_cfg, ThreadPolicy::Default)
            .try_run_traced(&simple_job())
            .expect("survives the plan");
        assert_eq!(format!("{indexed:?}"), format!("{reference:?}"));
        // Traces pin the full assignment/failure/speculation sequence, not
        // just the aggregate report.
        assert_eq!(format!("{indexed_trace:?}"), format!("{reference_trace:?}"));
    }

    #[test]
    fn job_error_display_is_structured() {
        let err = JobError::MaxAttemptsExceeded {
            task: 7,
            stage: 1,
            attempts: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("task 7"));
        assert!(msg.contains("stage 1"));
        assert!(msg.contains('4'));
    }
}
