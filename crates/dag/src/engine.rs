//! The driver: stage-at-a-time scheduling, executors, and the run loop.

use sae_cluster::{Cluster, ClusterBuilder, Dfs};
use sae_core::{AdaptiveController, ThreadPolicy, TunablePool};
use sae_sim::rng::DeterministicRng;
use sae_sim::{Kernel, Occurrence, ResourceId, ResourceUsage, SimTime, TimerId};

use crate::config::EngineConfig;
use crate::executor::ExecutorState;
use crate::job::{JobSpec, StageSpec};
use crate::messages::Message;
use crate::report::{ExecutorStageReport, JobReport, StageReport};
use crate::task::{Accounting, FlowTarget, Phase, TaskPlan, TaskState};
use crate::trace::{ExecutionTrace, TraceEvent};

/// Kernel event payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// One flow of a task's current phase completed. `gen` guards against
    /// stale events after the task was reset by an executor loss.
    PhaseDone { task: usize, gen: u32 },
    /// An incast stall elapsed; the delayed phase's flows may start.
    StallOver { task: usize, gen: u32 },
    /// Fault injection: the configured executor dies now.
    ExecutorFail,
    /// The failed executor's replacement registers.
    ExecutorRecover { executor: usize },
    /// A background replication write completed.
    BackgroundDone { bytes: f64 },
    /// A driver↔executor RPC message arrived.
    Rpc(Message),
    /// The 1 Hz metrics sampler fired.
    Sample,
}

/// Runs jobs on a simulated cluster under a given thread policy.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    policy: ThreadPolicy,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EngineConfig, policy: ThreadPolicy) -> Self {
        config.validate();
        Self { config, policy }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's thread policy.
    pub fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    /// Runs `job` to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid.
    pub fn run(&self, job: &JobSpec) -> JobReport {
        job.validate();
        Run::new(&self.config, &self.policy, job).execute().0
    }

    /// Like [`Engine::run`], additionally recording a structured
    /// [`ExecutionTrace`] (stage/task lifecycles, pool resizes, failures)
    /// suitable for Chrome-trace export.
    ///
    /// # Panics
    ///
    /// Panics if the job spec is invalid.
    pub fn run_traced(&self, job: &JobSpec) -> (JobReport, ExecutionTrace) {
        job.validate();
        let mut run = Run::new(&self.config, &self.policy, job);
        run.trace = Some(ExecutionTrace::new());
        let (report, trace) = run.execute();
        (report, trace.expect("trace was enabled"))
    }
}

/// Snapshot of cumulative resource usage, for exact stage-level integrals.
#[derive(Debug, Clone, Default)]
struct UsageSnapshot {
    cpu: Vec<ResourceUsage>,
    disk: Vec<ResourceUsage>,
    nic: Vec<ResourceUsage>,
    serve: Vec<ResourceUsage>,
}

struct Run<'a> {
    cfg: &'a EngineConfig,
    policy: &'a ThreadPolicy,
    job: &'a JobSpec,
    kernel: Kernel<Event>,
    cluster: Cluster,
    dfs: Dfs,
    executors: Vec<ExecutorState>,
    tasks: Vec<TaskState>,
    /// Pending (unassigned) task ids of the current stage.
    pending: Vec<usize>,
    /// Driver's view of each executor's capacity (updated via RPC).
    driver_capacity: Vec<usize>,
    /// Driver's count of tasks assigned-or-running per executor.
    driver_running: Vec<usize>,
    current_stage: usize,
    stage_tasks_remaining: usize,
    stage_started_at: f64,
    stage_usage_start: UsageSnapshot,
    stage_disk_read: f64,
    stage_disk_write: f64,
    stage_shuffle: f64,
    /// Per-executor thread-count traces for the current stage.
    stage_decisions: Vec<Vec<usize>>,
    /// Cluster disk throughput samples for the current stage.
    stage_series: Vec<(f64, f64)>,
    last_sample_usage: Vec<ResourceUsage>,
    last_sample_time: f64,
    sample_timer: Option<TimerId>,
    /// Fetch requests currently pointed at each node's serve path
    /// (including stalled ones) — drives the incast stall model.
    serve_pressure: Vec<usize>,
    /// Executors currently lost (fault injection).
    executor_down: Vec<bool>,
    /// Tasks completed by an executor before it failed (kept so stage
    /// accounting stays exact across resets).
    lost_task_counts: Vec<usize>,
    /// Pending fault-injection timers (cancelled at job end).
    failure_timers: Vec<TimerId>,
    rng: DeterministicRng,
    stage_reports: Vec<StageReport>,
    job_done: bool,
    trace: Option<ExecutionTrace>,
}

impl<'a> Run<'a> {
    fn new(cfg: &'a EngineConfig, policy: &'a ThreadPolicy, job: &'a JobSpec) -> Self {
        let mut kernel = Kernel::new();
        let cluster = ClusterBuilder::new(cfg.nodes)
            .node_spec(cfg.node_spec.clone())
            .fabric(cfg.fabric)
            .variability(cfg.variability)
            .seed(cfg.seed)
            .build(&mut kernel);
        let mut dfs = Dfs::new(cfg.block_size_mb, cfg.input_replication, cfg.seed);
        for (i, stage) in job.stages.iter().enumerate() {
            if stage.read_mb > 0.0 {
                dfs.create_file(&format!("{}/stage{}/input", job.name, i), stage.read_mb, cfg.nodes);
            }
        }
        let executors = (0..cfg.nodes)
            .map(|_| {
                let controller = match policy {
                    ThreadPolicy::Adaptive(mape) => Some(AdaptiveController::new(*mape)),
                    _ => None,
                };
                ExecutorState::new(cfg.default_threads(), controller)
            })
            .collect();
        let rng = DeterministicRng::seed(cfg.seed ^ 0x5AE5_AE5A);
        Self {
            cfg,
            policy,
            job,
            kernel,
            cluster,
            executors,
            tasks: Vec::new(),
            pending: Vec::new(),
            driver_capacity: vec![cfg.default_threads(); cfg.nodes],
            driver_running: vec![0; cfg.nodes],
            current_stage: 0,
            stage_tasks_remaining: 0,
            stage_started_at: 0.0,
            stage_usage_start: UsageSnapshot::default(),
            stage_disk_read: 0.0,
            stage_disk_write: 0.0,
            stage_shuffle: 0.0,
            stage_decisions: vec![Vec::new(); cfg.nodes],
            stage_series: Vec::new(),
            last_sample_usage: Vec::new(),
            last_sample_time: 0.0,
            sample_timer: None,
            serve_pressure: vec![0; cfg.nodes],
            executor_down: vec![false; cfg.nodes],
            lost_task_counts: vec![0; cfg.nodes],
            failure_timers: Vec::new(),
            rng,
            stage_reports: Vec::new(),
            job_done: false,
            trace: None,
            dfs,
        }
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    fn execute(mut self) -> (JobReport, Option<ExecutionTrace>) {
        if let Some(failure) = self.cfg.executor_failure {
            let t = self
                .kernel
                .schedule_timer(SimTime::from_seconds(failure.at), Event::ExecutorFail);
            self.failure_timers.push(t);
        }
        self.start_stage(0);
        self.schedule_sample();
        while let Some(occ) = self.kernel.next() {
            match occ {
                Occurrence::FlowCompleted { payload, at, .. }
                | Occurrence::TimerFired { payload, at, .. } => {
                    self.handle(payload, at.seconds());
                }
            }
            if self.job_done && self.kernel.is_idle() {
                break;
            }
        }
        let total_runtime = self.kernel.now().seconds();
        (
            JobReport {
                job: self.job.name.clone(),
                policy: self.policy.name().to_owned(),
                nodes: self.cfg.nodes,
                total_cores: self.cfg.total_cores(),
                total_runtime,
                input_mb: self.job.total_input_mb(),
                stages: self.stage_reports,
            },
            self.trace,
        )
    }

    fn handle(&mut self, event: Event, now: f64) {
        match event {
            Event::PhaseDone { task, gen } => {
                if self.tasks[task].generation == gen {
                    self.on_phase_flow_done(task, now);
                }
            }
            Event::StallOver { task, gen } => {
                if self.tasks[task].generation == gen {
                    self.start_phase_flows(task);
                }
            }
            Event::ExecutorFail => self.on_executor_fail(now),
            Event::ExecutorRecover { executor } => self.on_executor_recover(executor, now),
            // Replication bytes are accounted at submission (they are
            // deterministic); the completion event only drains the flow.
            Event::BackgroundDone { .. } => {}
            Event::Rpc(Message::AssignTask { task, executor }) => {
                self.start_task(task, executor, now);
            }
            Event::Rpc(Message::PoolSizeChanged { executor, size }) => {
                self.driver_capacity[executor] = size;
                self.try_assign(now);
            }
            Event::Sample => {
                self.take_sample(now);
                if !self.job_done {
                    self.schedule_sample();
                } else {
                    self.sample_timer = None;
                }
            }
        }
    }

    // ---- stage lifecycle -------------------------------------------------

    fn start_stage(&mut self, stage_id: usize) {
        let spec = &self.job.stages[stage_id];
        self.current_stage = stage_id;
        self.stage_started_at = self.kernel.now().seconds();
        self.stage_disk_read = 0.0;
        self.stage_disk_write = 0.0;
        self.stage_shuffle = 0.0;
        self.stage_series.clear();
        self.stage_usage_start = self.snapshot_usage();

        let task_count = self.task_count(spec, stage_id);
        let hint = (task_count / self.cfg.nodes).max(1);
        let now = self.stage_started_at;
        self.lost_task_counts = vec![0; self.cfg.nodes];
        for e in 0..self.cfg.nodes {
            if self.executor_down[e] {
                self.driver_capacity[e] = 0;
                self.stage_decisions[e] = Vec::new();
                continue;
            }
            self.executors[e].begin_stage();
            let threads = match self.policy {
                ThreadPolicy::Adaptive(_) => {
                    let controller = self.executors[e]
                        .controller
                        .as_mut()
                        .expect("adaptive policy implies controller");
                    controller.stage_started(now, Some(hint))
                }
                policy => policy.initial_threads(
                    spec.info(stage_id),
                    self.cfg.node_spec.cores,
                    Some(hint),
                ),
            };
            self.executors[e].pool.set_max_pool_size(threads);
            self.driver_capacity[e] = threads;
            self.stage_decisions[e] = vec![threads];
        }

        // Create tasks with locality preferences.
        let blocks: Option<Vec<Vec<usize>>> = if spec.read_mb > 0.0 {
            let file = self
                .dfs
                .file(&format!("{}/stage{}/input", self.job.name, stage_id))
                .expect("input file created at run start");
            Some(file.blocks.iter().map(|b| b.replicas.clone()).collect())
        } else {
            None
        };
        let all_nodes: Vec<usize> = (0..self.cfg.nodes).collect();
        self.tasks.clear();
        self.pending.clear();
        for t in 0..task_count {
            let preferred = match &blocks {
                Some(blocks) => blocks[t % blocks.len()].clone(),
                None => all_nodes.clone(),
            };
            self.tasks.push(TaskState::new(stage_id, preferred));
            self.pending.push(t);
        }
        self.stage_tasks_remaining = task_count;
        self.record(TraceEvent::StageStarted {
            stage: stage_id,
            at: now,
        });
        self.try_assign(now);
    }

    fn task_count(&self, spec: &StageSpec, stage_id: usize) -> usize {
        if let Some(tasks) = spec.tasks {
            return tasks;
        }
        // Pure ingest stages get one task per block; shuffle consumers use
        // the configured reduce-partition count even when they also read
        // spilled cache data.
        if spec.read_mb > 0.0 && spec.shuffle_in_mb == 0.0 {
            let file = self
                .dfs
                .file(&format!("{}/stage{}/input", self.job.name, stage_id))
                .expect("input file created at run start");
            return file.blocks.len();
        }
        ((self.cfg.total_cores() as f64 * self.cfg.shuffle_partitions_per_core).round() as usize)
            .max(1)
    }

    fn finish_stage(&mut self, now: f64) {
        let stage_id = self.current_stage;
        let spec = &self.job.stages[stage_id];
        let duration = (now - self.stage_started_at).max(1e-9);
        let end_usage = self.snapshot_usage();
        let nodes = self.cfg.nodes as f64;
        let cores = self.cfg.node_spec.cores as f64;

        let mut cpu_busy = 0.0;
        let mut iowait = 0.0;
        let mut disk_util = 0.0;
        for n in 0..self.cfg.nodes {
            let cpu_work =
                end_usage.cpu[n].work_done - self.stage_usage_start.cpu[n].work_done;
            let busy = (cpu_work / (cores * duration)).clamp(0.0, 1.0);
            let io_flow_seconds = (end_usage.disk[n].flow_seconds
                - self.stage_usage_start.disk[n].flow_seconds)
                + (end_usage.nic[n].flow_seconds - self.stage_usage_start.nic[n].flow_seconds)
                + (end_usage.serve[n].flow_seconds
                    - self.stage_usage_start.serve[n].flow_seconds);
            let wait = (io_flow_seconds / (cores * duration)).min(1.0 - busy).max(0.0);
            let util = ((end_usage.disk[n].busy_seconds
                - self.stage_usage_start.disk[n].busy_seconds)
                / duration)
                .clamp(0.0, 1.0);
            cpu_busy += busy;
            iowait += wait;
            disk_util += util;
        }

        let executors: Vec<ExecutorStageReport> = (0..self.cfg.nodes)
            .map(|e| {
                let state = &self.executors[e];
                ExecutorStageReport {
                    executor: e,
                    final_threads: state.pool.max_pool_size(),
                    decisions: self.stage_decisions[e].clone(),
                    epoll_wait: state.stats.epoll_wait,
                    io_bytes: state.stats.io_bytes,
                    tasks: state.stats.tasks_finished + self.lost_task_counts[e],
                    intervals: state
                        .controller
                        .as_ref()
                        .map(|c| c.history().iter().map(|&r| r.into()).collect())
                        .unwrap_or_default(),
                }
            })
            .collect();
        let threads_used = executors.iter().map(|e| e.final_threads).sum();

        self.stage_reports.push(StageReport {
            stage_id,
            name: spec.name.clone(),
            kind: match spec.kind() {
                sae_core::StageKind::Io => "io",
                sae_core::StageKind::Generic => "generic",
            },
            started_at: self.stage_started_at,
            duration,
            tasks: self.tasks.len(),
            avg_cpu_busy: cpu_busy / nodes,
            avg_cpu_iowait: iowait / nodes,
            avg_disk_util: disk_util / nodes,
            disk_read_mb: self.stage_disk_read,
            disk_write_mb: self.stage_disk_write,
            shuffle_mb: self.stage_shuffle,
            executors,
            threads_used,
            disk_throughput_series: self.stage_series.clone(),
        });

        self.record(TraceEvent::StageFinished {
            stage: stage_id,
            at: now,
        });
        if stage_id + 1 < self.job.stages.len() {
            self.start_stage(stage_id + 1);
        } else {
            self.job_done = true;
            if let Some(timer) = self.sample_timer.take() {
                self.kernel.cancel_timer(timer);
            }
            for timer in std::mem::take(&mut self.failure_timers) {
                self.kernel.cancel_timer(timer);
            }
        }
    }

    // ---- task lifecycle --------------------------------------------------

    /// Assigns pending tasks to executors with free capacity (driver view),
    /// preferring data-local placement.
    fn try_assign(&mut self, _now: f64) {
        loop {
            let mut assigned_any = false;
            for e in 0..self.cfg.nodes {
                if self.driver_running[e] >= self.driver_capacity[e] {
                    continue;
                }
                if self.pending.is_empty() {
                    return;
                }
                // Prefer a task whose preferred nodes include e.
                let pos = self
                    .pending
                    .iter()
                    .position(|&t| self.tasks[t].preferred_nodes.contains(&e))
                    .unwrap_or(0);
                let task = self.pending.remove(pos);
                self.driver_running[e] += 1;
                self.kernel.schedule_after(
                    SimTime::from_seconds(self.cfg.rpc_latency),
                    Event::Rpc(Message::AssignTask { task, executor: e }),
                );
                assigned_any = true;
            }
            if !assigned_any {
                return;
            }
        }
    }

    /// An `AssignTask` RPC arrived: materialise the task's phases and start.
    fn start_task(&mut self, task_id: usize, executor: usize, now: f64) {
        if self.executor_down[executor] {
            // The executor died while the assignment was in flight.
            self.pending.push(task_id);
            self.try_assign(now);
            return;
        }
        let stage_id = self.tasks[task_id].stage;
        let spec = &self.job.stages[stage_id];
        let task_count = self.tasks.len().max(1) as f64;
        let read_local = self.tasks[task_id].preferred_nodes.contains(&executor);
        let read_source = if read_local || spec.read_mb == 0.0 {
            executor
        } else {
            // Remote read: pull from a random replica holder.
            let replicas = &self.tasks[task_id].preferred_nodes;
            replicas[self.rng.index(replicas.len())]
        };
        let fetch_sources: Vec<usize> = if spec.shuffle_in_mb > 0.0 {
            let f = self.cfg.fetch_parallelism.min(self.cfg.nodes);
            (0..f).map(|k| (task_id + k) % self.cfg.nodes).collect()
        } else {
            Vec::new()
        };
        let cpu_total = spec.cpu_per_mb * spec.processed_mb()
            + spec.base_cpu_per_task * task_count;
        let plan = TaskPlan {
            read_mb: spec.read_mb / task_count,
            read_source,
            fetch_mb: spec.shuffle_in_mb / task_count,
            fetch_sources,
            cpu_sec: cpu_total / task_count,
            spill_mb: spec.shuffle_out_mb / task_count,
            output_mb: spec.output_mb / task_count,
            chunks: self.cfg.chunks_per_task,
            node: executor,
            seed: self.cfg.seed ^ (task_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let task = &mut self.tasks[task_id];
        task.executor = Some(executor);
        task.phases = plan.build_phases();
        task.current_phase = 0;
        self.executors[executor].pool.task_started();
        self.record(TraceEvent::TaskStarted {
            task: task_id,
            executor,
            at: now,
        });
        self.start_phase(task_id, now);
    }

    fn resolve(&self, target: FlowTarget) -> (ResourceId, u8) {
        match target {
            FlowTarget::Cpu { node } => (self.cluster.node(node).cpu, 0),
            FlowTarget::Disk { node, class } => {
                (self.cluster.node(node).disk.resource(), class.flow_class())
            }
            FlowTarget::Nic { node } => (self.cluster.node(node).nic, 0),
            FlowTarget::ServePath { node } => (self.cluster.node(node).serve, 0),
        }
    }

    fn start_phase(&mut self, task_id: usize, now: f64) {
        let phase: Phase = self.tasks[task_id].phases[self.tasks[task_id].current_phase].clone();
        self.tasks[task_id].outstanding = phase.flows.len();
        self.tasks[task_id].phase_started_at = now;
        // Incast model: register fetch pressure on every serving node; if
        // any source is over the free threshold, the request stalls
        // (TCP retransmission timeouts) before any byte moves. The stall is
        // part of the phase and therefore counts into epoll wait.
        let mut max_pressure = 0usize;
        let mut registered = false;
        for flow in &phase.flows {
            if let FlowTarget::ServePath { node } = flow.target {
                self.serve_pressure[node] += 1;
                registered = true;
                max_pressure = max_pressure.max(self.serve_pressure[node]);
            }
        }
        self.tasks[task_id].pressure_registered = registered;
        if max_pressure > self.cfg.incast_free_requests {
            let over = (max_pressure - self.cfg.incast_free_requests) as f64;
            let stall = self.cfg.incast_stall_base * (over / 16.0).powf(1.5);
            if stall > 0.0 {
                let gen = self.tasks[task_id].generation;
                self.kernel.schedule_after(
                    SimTime::from_seconds(stall),
                    Event::StallOver { task: task_id, gen },
                );
                return;
            }
        }
        self.start_phase_flows(task_id);
    }

    fn start_phase_flows(&mut self, task_id: usize) {
        let phase: Phase = self.tasks[task_id].phases[self.tasks[task_id].current_phase].clone();
        let gen = self.tasks[task_id].generation;
        self.tasks[task_id].active_flows.clear();
        for flow in &phase.flows {
            let (resource, class) = self.resolve(flow.target);
            let handle = self.kernel.start_flow(
                resource,
                class,
                flow.work,
                Event::PhaseDone { task: task_id, gen },
            );
            self.tasks[task_id].active_flows.push((resource, handle));
        }
    }

    /// Releases the serve-path pressure the task's current phase holds.
    fn release_pressure(&mut self, task_id: usize) {
        if !self.tasks[task_id].pressure_registered {
            return;
        }
        self.tasks[task_id].pressure_registered = false;
        let phase = self.tasks[task_id].phases[self.tasks[task_id].current_phase].clone();
        for flow in &phase.flows {
            if let FlowTarget::ServePath { node } = flow.target {
                debug_assert!(self.serve_pressure[node] > 0);
                self.serve_pressure[node] -= 1;
            }
        }
    }

    /// Fault injection: the configured executor dies. Its running tasks
    /// are lost and requeued, its pool and per-stage counters reset —
    /// Spark's executor-loss handling.
    fn on_executor_fail(&mut self, now: f64) {
        let failure = self.cfg.executor_failure.expect("fail event implies config");
        let e = failure.executor;
        self.record(TraceEvent::ExecutorFailed { executor: e, at: now });
        self.executor_down[e] = true;
        self.driver_capacity[e] = 0;
        self.driver_running[e] = 0;
        // Reset every task currently on the executor.
        let victims: Vec<usize> = (0..self.tasks.len())
            .filter(|&t| {
                self.tasks[t].executor == Some(e) && !self.tasks[t].phases.is_empty()
                    && self.tasks[t].current_phase < self.tasks[t].phases.len()
            })
            .collect();
        for task_id in victims {
            self.release_pressure(task_id);
            let flows = std::mem::take(&mut self.tasks[task_id].active_flows);
            for (resource, flow) in flows {
                let _ = self.kernel.cancel_flow(resource, flow);
            }
            let task = &mut self.tasks[task_id];
            task.generation += 1;
            task.executor = None;
            task.phases.clear();
            task.current_phase = 0;
            task.outstanding = 0;
            self.pending.push(task_id);
        }
        // Preserve the completed-task count for stage accounting, then
        // reset the executor's sensors and pool.
        self.lost_task_counts[e] += self.executors[e].stats.tasks_finished;
        self.executors[e].begin_stage();
        self.executors[e].pool = crate::executor::SlotPool::new(self.cfg.default_threads());
        self.kernel.schedule_after(
            SimTime::from_seconds(failure.downtime.max(1e-6)),
            Event::ExecutorRecover { executor: e },
        );
        let _ = now;
        self.try_assign(now);
    }

    /// The replacement executor registers: fresh pool, fresh controller
    /// state, back into the scheduler's rotation.
    fn on_executor_recover(&mut self, executor: usize, now: f64) {
        if self.job_done {
            return;
        }
        self.record(TraceEvent::ExecutorRecovered { executor, at: now });
        self.executor_down[executor] = false;
        let spec = &self.job.stages[self.current_stage];
        let hint = (self.tasks.len() / self.cfg.nodes).max(1);
        let threads = match self.policy {
            ThreadPolicy::Adaptive(_) => {
                let controller = self.executors[executor]
                    .controller
                    .as_mut()
                    .expect("adaptive policy implies controller");
                controller.stage_started(now, Some(hint))
            }
            policy => policy.initial_threads(
                spec.info(self.current_stage),
                self.cfg.node_spec.cores,
                Some(hint),
            ),
        };
        self.executors[executor].begin_stage();
        self.executors[executor].pool.set_max_pool_size(threads);
        self.driver_capacity[executor] = threads;
        self.stage_decisions[executor].push(threads);
        self.try_assign(now);
    }

    /// One flow of a task's current phase completed.
    fn on_phase_flow_done(&mut self, task_id: usize, now: f64) {
        self.tasks[task_id].outstanding -= 1;
        if self.tasks[task_id].outstanding > 0 {
            return;
        }
        // Whole phase complete: account it.
        let executor = self.tasks[task_id].executor.expect("running task assigned");
        let phase_idx = self.tasks[task_id].current_phase;
        let phase = self.tasks[task_id].phases[phase_idx].clone();
        let phase_duration = now - self.tasks[task_id].phase_started_at;
        self.release_pressure(task_id);
        self.tasks[task_id].active_flows.clear();
        if phase.is_io() {
            self.executors[executor].stats.epoll_wait += phase_duration;
        }
        for flow in &phase.flows {
            match flow.accounting {
                Accounting::Cpu => {}
                Accounting::DiskRead => {
                    self.stage_disk_read += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
                Accounting::ShuffleServe => {
                    self.stage_disk_read += flow.work;
                }
                Accounting::DiskWrite => {
                    self.stage_disk_write += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
                Accounting::OutputWrite => {
                    self.stage_disk_write += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                    self.start_replication(executor, flow.work);
                }
                Accounting::Net => {
                    self.stage_shuffle += flow.work;
                    self.executors[executor].stats.io_bytes += flow.work;
                }
            }
        }
        // Advance the task.
        self.tasks[task_id].current_phase += 1;
        if self.tasks[task_id].current_phase < self.tasks[task_id].phases.len() {
            self.start_phase(task_id, now);
        } else {
            self.on_task_finished(task_id, executor, now);
        }
    }

    /// Fire-and-forget replica writes on other nodes' disks.
    fn start_replication(&mut self, writer: usize, bytes: f64) {
        let extra = self.cfg.output_replication.min(self.cfg.nodes) - 1;
        for k in 1..=extra {
            let node = (writer + k) % self.cfg.nodes;
            let resource = self.cluster.node(node).disk.resource();
            self.stage_disk_write += bytes;
            self.kernel.start_flow(
                resource,
                sae_storage::DiskClass::Write.flow_class(),
                bytes,
                Event::BackgroundDone { bytes },
            );
        }
    }

    fn on_task_finished(&mut self, task_id: usize, executor: usize, now: f64) {
        self.record(TraceEvent::TaskFinished {
            task: task_id,
            executor,
            at: now,
        });
        self.executors[executor].pool.task_finished();
        self.executors[executor].stats.tasks_finished += 1;
        self.driver_running[executor] -= 1;
        self.stage_tasks_remaining -= 1;

        // MAPE-K: consult the controller with cumulative stage counters
        // (including the disk-busy seconds behind the alternative
        // disk-utilisation signal).
        let stats = self.executors[executor].stats;
        let disk = self.cluster.node(executor).disk.resource();
        let disk_busy = self.kernel.usage(disk).busy_seconds
            - self.stage_usage_start.disk[executor].busy_seconds;
        let snapshot = sae_core::ProbeSnapshot {
            epoll_wait: stats.epoll_wait,
            io_bytes: stats.io_bytes,
            disk_busy,
        };
        let decision = self.executors[executor]
            .controller
            .as_mut()
            .and_then(|c| c.task_finished_probe(now, snapshot));
        if let Some(new_size) = decision {
            // Execute locally, then notify the driver over RPC (§5.4).
            self.record(TraceEvent::PoolResized {
                executor,
                to: new_size,
                at: now,
            });
            self.executors[executor].pool.set_max_pool_size(new_size);
            self.stage_decisions[executor].push(new_size);
            self.kernel.schedule_after(
                SimTime::from_seconds(self.cfg.rpc_latency),
                Event::Rpc(Message::PoolSizeChanged {
                    executor,
                    size: new_size,
                }),
            );
        }

        if self.stage_tasks_remaining == 0 {
            self.finish_stage(now);
        } else {
            self.try_assign(now);
        }
    }

    // ---- metrics ---------------------------------------------------------

    fn snapshot_usage(&mut self) -> UsageSnapshot {
        let mut snap = UsageSnapshot::default();
        for n in 0..self.cfg.nodes {
            let node = self.cluster.node(n).clone();
            snap.cpu.push(self.kernel.usage(node.cpu));
            snap.disk.push(self.kernel.usage(node.disk.resource()));
            snap.nic.push(self.kernel.usage(node.nic));
            snap.serve.push(self.kernel.usage(node.serve));
        }
        snap
    }

    fn schedule_sample(&mut self) {
        let timer = self.kernel.schedule_after(
            SimTime::from_seconds(self.cfg.sample_interval),
            Event::Sample,
        );
        self.sample_timer = Some(timer);
    }

    fn take_sample(&mut self, now: f64) {
        let dt = now - self.last_sample_time;
        if dt <= 0.0 {
            return;
        }
        let disks: Vec<ResourceUsage> = (0..self.cfg.nodes)
            .map(|n| {
                let r = self.cluster.node(n).disk.resource();
                self.kernel.usage(r)
            })
            .collect();
        if !self.last_sample_usage.is_empty() {
            let total: f64 = disks
                .iter()
                .zip(&self.last_sample_usage)
                .map(|(cur, prev)| (cur.work_done - prev.work_done) / dt)
                .sum();
            self.stage_series
                .push((now - self.stage_started_at, total));
        }
        self.last_sample_usage = disks;
        self.last_sample_time = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageSpec;
    use sae_core::MapeConfig;

    fn small_config() -> EngineConfig {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.nodes = 2;
        cfg.block_size_mb = 64;
        cfg
    }

    fn simple_job() -> JobSpec {
        JobSpec::builder("test")
            .stage(StageSpec::read("ingest", 512.0).cpu_per_mb(0.002))
            .stage(
                StageSpec::read("map", 512.0)
                    .cpu_per_mb(0.002)
                    .shuffle_out(256.0),
            )
            .stage(
                StageSpec::shuffle("reduce", 256.0)
                    .cpu_per_mb(0.002)
                    .write_output(256.0),
            )
            .build()
    }

    #[test]
    fn job_runs_to_completion() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_runtime > 0.0);
        for stage in &report.stages {
            assert!(stage.duration > 0.0);
            assert_eq!(
                stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                stage.tasks
            );
        }
    }

    #[test]
    fn io_accounting_matches_spec_volumes() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        // Stage 0: 512 MB read, no writes.
        assert!((report.stages[0].disk_read_mb - 512.0).abs() < 1.0);
        assert!(report.stages[0].disk_write_mb < 1.0);
        // Stage 1: 512 MB read + 256 MB spill.
        assert!((report.stages[1].disk_read_mb - 512.0).abs() < 1.0);
        assert!((report.stages[1].disk_write_mb - 256.0).abs() < 1.0);
        // Stage 2: 256 MB serve reads + 256 MB output write; 256 shuffled.
        assert!((report.stages[2].disk_read_mb - 256.0).abs() < 1.0);
        assert!((report.stages[2].disk_write_mb - 256.0).abs() < 1.0);
        assert!((report.stages[2].shuffle_mb - 256.0).abs() < 1.0);
    }

    #[test]
    fn default_policy_uses_all_cores_every_stage() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        for stage in &report.stages {
            assert_eq!(stage.threads_used, 2 * 32);
        }
    }

    #[test]
    fn static_policy_shrinks_io_stages_only() {
        let policy = ThreadPolicy::Static(sae_core::StaticPolicy::new(8));
        let report = Engine::new(small_config(), policy).run(&simple_job());
        // Stages 0, 1 read (I/O); stage 2 writes (I/O): all marked io here.
        assert_eq!(report.stages[0].threads_used, 2 * 8);
        assert_eq!(report.stages[2].threads_used, 2 * 8);
    }

    #[test]
    fn adaptive_policy_adapts_and_reports_intervals() {
        let cfg = small_config();
        // Large enough that each executor sees well over c_min*3 tasks.
        let job = JobSpec::builder("big-read")
            .stage(StageSpec::read("ingest", 8192.0).cpu_per_mb(0.002))
            .build();
        let policy = ThreadPolicy::Adaptive(MapeConfig::new(2, 32));
        let report = Engine::new(cfg, policy).run(&job);
        let stage0 = &report.stages[0];
        let any_intervals = stage0.executors.iter().any(|e| !e.intervals.is_empty());
        assert!(any_intervals, "adaptive run must record intervals");
        for e in &stage0.executors {
            assert!(e.final_threads >= 2 && e.final_threads <= 32);
            assert!(!e.decisions.is_empty());
            assert_eq!(e.decisions[0], 2, "adaptation starts at c_min");
        }
    }

    #[test]
    fn deterministic_runs() {
        let r1 = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        let r2 = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        assert_eq!(r1.total_runtime.to_bits(), r2.total_runtime.to_bits());
        assert_eq!(r1.stages.len(), r2.stages.len());
        for (a, b) in r1.stages.iter().zip(&r2.stages) {
            assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        }
    }

    #[test]
    fn utilisation_fractions_are_sane() {
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&simple_job());
        for stage in &report.stages {
            assert!((0.0..=1.0).contains(&stage.avg_cpu_busy));
            assert!((0.0..=1.0).contains(&stage.avg_cpu_iowait));
            assert!((0.0..=1.0).contains(&stage.avg_disk_util));
            assert!(stage.avg_cpu_busy + stage.avg_cpu_iowait <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn traced_run_records_full_lifecycle() {
        let report_and_trace =
            Engine::new(small_config(), ThreadPolicy::Default).run_traced(&simple_job());
        let (report, trace) = report_and_trace;
        assert!(!trace.is_empty());
        // One start and one finish per stage.
        let stage_starts = trace
            .events()
            .iter()
            .filter(|e| matches!(e, crate::TraceEvent::StageStarted { .. }))
            .count();
        assert_eq!(stage_starts, report.stages.len());
        // Every task appears exactly once per executor count.
        let total_tasks: usize = report.stages.iter().map(|s| s.tasks).sum();
        let started: usize = trace
            .tasks_started_per_executor(report.nodes)
            .iter()
            .sum();
        assert_eq!(started, total_tasks);
        // The export is parseable-ish JSON.
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn traced_adaptive_run_records_resizes() {
        let job = JobSpec::builder("big-read")
            .stage(StageSpec::read("ingest", 8192.0).cpu_per_mb(0.002))
            .build();
        let policy = ThreadPolicy::Adaptive(MapeConfig::new(2, 32));
        let (_, trace) = Engine::new(small_config(), policy).run_traced(&job);
        let resizes: usize = (0..2).map(|e| trace.resizes_for(e).len()).sum();
        assert!(resizes >= 2, "adaptive run must record pool resizes");
    }

    #[test]
    fn output_replication_multiplies_writes() {
        let mut cfg = small_config();
        cfg.output_replication = 2;
        let job = JobSpec::builder("rep")
            .stage(StageSpec::read("r", 128.0).write_output(128.0))
            .build();
        let report = Engine::new(cfg, ThreadPolicy::Default).run(&job);
        // 128 local + 128 replica.
        assert!((report.stages[0].disk_write_mb - 256.0).abs() < 1.0);
    }

    #[test]
    fn read_tasks_run_data_local_under_full_replication() {
        // Replication = nodes: every block is local everywhere, so no
        // network traffic appears in a pure read stage.
        let job = JobSpec::builder("local")
            .stage(StageSpec::read("ingest", 1024.0))
            .build();
        let report = Engine::new(small_config(), ThreadPolicy::Default).run(&job);
        assert_eq!(report.stages[0].shuffle_mb, 0.0, "reads must be local");
    }

    #[test]
    fn partial_replication_causes_some_remote_reads() {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.block_size_mb = 64;
        cfg.input_replication = 1; // primaries only
        let job = JobSpec::builder("remote")
            .stage(StageSpec::read("ingest", 4096.0))
            .build();
        let report = Engine::new(cfg, ThreadPolicy::Default).run(&job);
        // The scheduler prefers local tasks, but the tail forces a few
        // remote reads, visible as network bytes.
        assert!(report.stages[0].shuffle_mb >= 0.0);
        // Read accounting still exact.
        assert!((report.stages[0].disk_read_mb - 4096.0).abs() < 1.0);
    }

    #[test]
    fn rpc_latency_delays_but_preserves_work() {
        let job = simple_job();
        let fast = Engine::new(small_config(), ThreadPolicy::Default).run(&job);
        let mut slow_cfg = small_config();
        slow_cfg.rpc_latency = 0.25; // pathological quarter-second RPCs
        let slow = Engine::new(slow_cfg, ThreadPolicy::Default).run(&job);
        assert!(slow.total_runtime > fast.total_runtime);
        for (a, b) in fast.stages.iter().zip(&slow.stages) {
            assert_eq!(a.tasks, b.tasks);
            assert!((a.disk_read_mb - b.disk_read_mb).abs() < 1e-6);
        }
    }

    #[test]
    fn stage_threads_label_matches_scheduler_view() {
        // The "x/128" labels of Figure 8 must reflect what the scheduler
        // ends the stage believing — the §5.4 protocol guarantee.
        let policy = ThreadPolicy::Static(sae_core::StaticPolicy::new(8));
        let report = Engine::new(small_config(), policy).run(&simple_job());
        for stage in &report.stages {
            let from_executors: usize =
                stage.executors.iter().map(|e| e.final_threads).sum();
            assert_eq!(stage.threads_used, from_executors);
        }
    }

    #[test]
    fn fewer_threads_help_io_heavy_stage_on_hdd() {
        // The core premise: on an HDD, a pure-read stage is faster with 8
        // threads than with 32.
        let job = JobSpec::builder("readonly")
            .stage(StageSpec::read("ingest", 4096.0).cpu_per_mb(0.001))
            .build();
        let cfg = small_config();
        let t32 = Engine::new(cfg.clone(), ThreadPolicy::Default)
            .run(&job)
            .total_runtime;
        let t8 = Engine::new(cfg, ThreadPolicy::Static(sae_core::StaticPolicy::new(8)))
            .run(&job)
            .total_runtime;
        assert!(
            t8 < t32,
            "8 threads should beat 32 on an I/O-bound HDD stage: {t8} vs {t32}"
        );
    }
}
