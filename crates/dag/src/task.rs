//! Tasks as sequences of CPU/I-O phases.

use sae_storage::DiskClass;

/// What kind of device a flow runs on (node-indexed; the engine resolves
/// node indices to kernel resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlowTarget {
    /// CPU of `node`.
    Cpu { node: usize },
    /// Disk of `node`, in a given traffic class.
    Disk { node: usize, class: DiskClass },
    /// Ingress NIC of `node`.
    Nic { node: usize },
    /// Page-cache shuffle-serve path of `node`.
    ServePath { node: usize },
}

/// How a flow is accounted in metrics and the controller's probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Accounting {
    /// CPU work: not I/O.
    Cpu,
    /// Local storage read (counts as task I/O and disk read bytes).
    DiskRead,
    /// Local storage write: spill or output (task I/O + disk write bytes).
    DiskWrite,
    /// Remote disk read serving a shuffle fetch (disk read bytes only; the
    /// fetching task's throughput is counted at the network hop).
    ShuffleServe,
    /// Network transfer of shuffled data (task I/O + shuffle bytes).
    Net,
    /// DFS output write: like [`Accounting::DiskWrite`] but additionally
    /// triggers replication traffic to other nodes.
    OutputWrite,
}

/// One flow of a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FlowSpec {
    pub target: FlowTarget,
    /// Work units: MB for I/O flows, cpu-seconds for CPU flows.
    pub work: f64,
    pub accounting: Accounting,
}

/// A phase: a set of flows that run concurrently; the phase completes when
/// all of them do. The executing thread is blocked for the whole phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Phase {
    pub flows: Vec<FlowSpec>,
}

impl Phase {
    /// Whether the thread is blocked on I/O (vs computing) in this phase.
    pub fn is_io(&self) -> bool {
        self.flows
            .iter()
            .any(|f| !matches!(f.accounting, Accounting::Cpu))
    }
}

/// Inputs for building a task's phase list.
///
/// Borrows the fetch-source list from the caller: plans are built once per
/// assignment on the driver's hot path, so the engine hands out a slice of
/// a reused buffer instead of allocating a `Vec` per task.
#[derive(Debug, Clone)]
pub(crate) struct TaskPlan<'a> {
    /// DFS bytes this task reads (MB).
    pub read_mb: f64,
    /// Node the read is served from (own node when local).
    pub read_source: usize,
    /// Shuffle bytes this task fetches (MB).
    pub fetch_mb: f64,
    /// Nodes the fetch is served from (concurrently, per chunk).
    pub fetch_sources: &'a [usize],
    /// CPU seconds this task burns.
    pub cpu_sec: f64,
    /// Shuffle bytes this task spills to its local disk (MB).
    pub spill_mb: f64,
    /// DFS output bytes this task writes locally (MB).
    pub output_mb: f64,
    /// Number of CPU/I-O interleaving chunks.
    pub chunks: usize,
    /// The node (= executor) the task runs on.
    pub node: usize,
    /// Per-task seed for data-skew jitter.
    ///
    /// Real record sizes vary, so tasks drift out of phase; without jitter
    /// every task started at the same instant issues its I/O in lockstep
    /// convoys, grossly inflating measured contention at pool-resize
    /// moments.
    pub seed: u64,
}

impl TaskPlan<'_> {
    /// Expands the plan into the task's ordered phase list, using a
    /// scratch `Vec` for the chunk weights (convenience wrapper around
    /// [`TaskPlan::build_phases_with`] for tests and one-off callers).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero or a fetch is requested with no sources.
    #[cfg(test)]
    pub fn build_phases(&self) -> Vec<Phase> {
        self.build_phases_with(&mut Vec::new())
    }

    /// Expands the plan into the task's ordered phase list.
    ///
    /// Each chunk interleaves: read → fetch (parallel serves, then the
    /// network hop) → compute → spill → output-write. Zero-volume parts are
    /// omitted; a task with no work at all yields a single empty-CPU phase
    /// so it still schedules and completes.
    ///
    /// `weights` is caller-owned scratch (cleared on entry): the engine
    /// builds one plan per assignment and reuses a single buffer for the
    /// chunk-weight computation across all of them.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero or a fetch is requested with no sources.
    pub fn build_phases_with(&self, weights: &mut Vec<f64>) -> Vec<Phase> {
        assert!(self.chunks > 0, "chunks must be positive");
        let mut rng = sae_sim::rng::DeterministicRng::seed(self.seed);
        // Uneven chunk weights (record-size skew); byte totals are exact.
        weights.clear();
        weights.extend((0..self.chunks).map(|_| rng.uniform_range(0.6, 1.4)));
        let total: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= total;
        }
        // Mild per-task CPU skew (stragglers).
        let cpu_mult = rng.uniform_range(0.85, 1.15);
        let mut phases = Vec::new();
        for &weight in weights.iter() {
            let k = 1.0 / weight; // this chunk's share: work / k
            if self.read_mb > 0.0 {
                let mut flows = vec![FlowSpec {
                    target: FlowTarget::Disk {
                        node: self.read_source,
                        class: DiskClass::Read,
                    },
                    work: self.read_mb / k,
                    accounting: if self.read_source == self.node {
                        Accounting::DiskRead
                    } else {
                        Accounting::ShuffleServe
                    },
                }];
                if self.read_source != self.node {
                    // Remote block read: the bytes also cross the network.
                    flows.push(FlowSpec {
                        target: FlowTarget::Nic { node: self.node },
                        work: self.read_mb / k,
                        accounting: Accounting::Net,
                    });
                }
                phases.push(Phase { flows });
            }
            if self.fetch_mb > 0.0 {
                assert!(
                    !self.fetch_sources.is_empty(),
                    "fetch requires at least one source"
                );
                let per_source = self.fetch_mb / k / self.fetch_sources.len() as f64;
                let serves = self
                    .fetch_sources
                    .iter()
                    .map(|&source| FlowSpec {
                        target: FlowTarget::ServePath { node: source },
                        work: per_source,
                        accounting: Accounting::ShuffleServe,
                    })
                    .collect();
                phases.push(Phase { flows: serves });
                phases.push(Phase {
                    flows: vec![FlowSpec {
                        target: FlowTarget::Nic { node: self.node },
                        work: self.fetch_mb / k,
                        accounting: Accounting::Net,
                    }],
                });
            }
            if self.cpu_sec > 0.0 {
                phases.push(Phase {
                    flows: vec![FlowSpec {
                        target: FlowTarget::Cpu { node: self.node },
                        work: self.cpu_sec * cpu_mult / k,
                        accounting: Accounting::Cpu,
                    }],
                });
            }
            if self.spill_mb > 0.0 {
                phases.push(Phase {
                    flows: vec![FlowSpec {
                        target: FlowTarget::Disk {
                            node: self.node,
                            class: DiskClass::Write,
                        },
                        work: self.spill_mb / k,
                        accounting: Accounting::DiskWrite,
                    }],
                });
            }
            if self.output_mb > 0.0 {
                phases.push(Phase {
                    flows: vec![FlowSpec {
                        target: FlowTarget::Disk {
                            node: self.node,
                            class: DiskClass::Write,
                        },
                        work: self.output_mb / k,
                        accounting: Accounting::OutputWrite,
                    }],
                });
            }
        }
        if phases.is_empty() {
            phases.push(Phase {
                flows: vec![FlowSpec {
                    target: FlowTarget::Cpu { node: self.node },
                    work: 0.0,
                    accounting: Accounting::Cpu,
                }],
            });
        }
        phases
    }
}

use std::sync::Arc;

/// Runtime state of one attempt of a task on one executor.
///
/// A task may have several attempts over its lifetime — retries after
/// transient failures or executor loss, plus at most one concurrent
/// speculative clone — but each attempt runs its own phase plan to
/// completion (or death) independently.
#[derive(Debug, Clone)]
pub(crate) struct AttemptState {
    /// Executor (= node) the attempt runs on.
    pub executor: usize,
    /// The attempt's phase plan (built on assignment, since the executor
    /// determines locality).
    pub phases: Vec<Phase>,
    /// Index of the phase currently running.
    pub current_phase: usize,
    /// Flows of the current phase still in flight.
    pub outstanding: usize,
    /// When the attempt started (for straggler detection).
    pub started_at: f64,
    /// When the current phase started (for ε accounting).
    pub phase_started_at: f64,
    /// Kernel handles of the current phase's in-flight flows (for
    /// cancellation on executor loss or speculative defeat).
    pub active_flows: Vec<(sae_sim::ResourceId, sae_sim::FlowId)>,
    /// Pending incast-stall timer, cancellable when the attempt dies.
    pub stall_timer: Option<sae_sim::TimerId>,
    /// Whether the current phase has registered serve-path pressure.
    pub pressure_registered: bool,
    /// Whether the attempt is still running. Dead attempts (failed,
    /// cancelled, or superseded) ignore any straggler kernel events.
    pub live: bool,
    /// Whether this attempt is a speculative clone.
    pub speculative: bool,
    /// Injected transient fault: the attempt fails after completing this
    /// phase (drawn from the fault RNG at assignment).
    pub fail_after_phase: Option<usize>,
}

impl AttemptState {
    /// Creates a freshly assigned attempt.
    pub fn new(executor: usize, phases: Vec<Phase>, started_at: f64, speculative: bool) -> Self {
        Self {
            executor,
            phases,
            current_phase: 0,
            outstanding: 0,
            started_at,
            phase_started_at: started_at,
            active_flows: Vec::new(),
            stall_timer: None,
            pressure_registered: false,
            live: true,
            speculative,
            fail_after_phase: None,
        }
    }
}

/// Runtime state of a task across all its attempts.
#[derive(Debug, Clone)]
pub(crate) struct TaskState {
    /// Stage the task belongs to.
    pub stage: usize,
    /// Preferred (data-local) nodes. Shared, not cloned, per task: many
    /// tasks reference the same replica list (or the all-nodes list), so
    /// stage start allocates one list per distinct block instead of one
    /// per task.
    pub preferred_nodes: Arc<Vec<usize>>,
    /// Every attempt ever made, in launch order. The attempt number in
    /// messages and traces is the index into this vector.
    pub attempts: Vec<AttemptState>,
    /// Executors on which an attempt of this task has already failed
    /// (avoided on retry when an alternative exists).
    pub failed_on: Vec<usize>,
    /// Failed attempts so far (drives the retry budget and backoff).
    pub failures: usize,
    /// Whether a winning attempt has completed.
    pub completed: bool,
    /// Whether the task currently sits in the driver's pending queue.
    pub queued: bool,
    /// Whether a speculative clone has been requested or launched.
    pub speculated: bool,
}

impl TaskState {
    /// Creates an unassigned task.
    pub fn new(stage: usize, preferred_nodes: Arc<Vec<usize>>) -> Self {
        Self {
            stage,
            preferred_nodes,
            attempts: Vec::new(),
            failed_on: Vec::new(),
            failures: 0,
            completed: false,
            queued: true,
            speculated: false,
        }
    }

    /// Indices of attempts that are still running.
    pub fn live_attempts(&self) -> impl Iterator<Item = usize> + '_ {
        self.attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live)
            .map(|(i, _)| i)
    }

    /// Whether any attempt is currently running.
    pub fn has_live_attempt(&self) -> bool {
        self.attempts.iter().any(|a| a.live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> TaskPlan<'static> {
        TaskPlan {
            read_mb: 128.0,
            read_source: 0,
            fetch_mb: 0.0,
            fetch_sources: &[],
            cpu_sec: 2.0,
            spill_mb: 64.0,
            output_mb: 0.0,
            chunks: 4,
            node: 0,
            seed: 7,
        }
    }

    #[test]
    fn chunked_interleaving_produces_expected_phase_count() {
        let phases = plan().build_phases();
        // per chunk: read, cpu, spill = 3 phases; 4 chunks = 12.
        assert_eq!(phases.len(), 12);
    }

    #[test]
    fn work_is_conserved_across_chunks() {
        let phases = plan().build_phases();
        let read: f64 = phases
            .iter()
            .flat_map(|p| &p.flows)
            .filter(|f| f.accounting == Accounting::DiskRead)
            .map(|f| f.work)
            .sum();
        assert!((read - 128.0).abs() < 1e-9);
        let cpu: f64 = phases
            .iter()
            .flat_map(|p| &p.flows)
            .filter(|f| f.accounting == Accounting::Cpu)
            .map(|f| f.work)
            .sum();
        // CPU carries per-task skew jitter of up to ±15%.
        assert!((cpu - 2.0).abs() < 0.3 + 1e-9, "cpu = {cpu}");
    }

    #[test]
    fn fetch_creates_parallel_serves_then_net_hop() {
        let mut p = plan();
        p.read_mb = 0.0;
        p.spill_mb = 0.0;
        p.fetch_mb = 100.0;
        p.fetch_sources = &[1, 2, 3];
        p.chunks = 1;
        let phases = p.build_phases();
        // serve phase, net phase, cpu phase
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].flows.len(), 3);
        assert!(phases[0]
            .flows
            .iter()
            .all(|f| f.accounting == Accounting::ShuffleServe));
        assert_eq!(phases[1].flows.len(), 1);
        assert_eq!(phases[1].flows[0].accounting, Accounting::Net);
        let serve_total: f64 = phases[0].flows.iter().map(|f| f.work).sum();
        assert!((serve_total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn remote_read_adds_network_hop() {
        let mut p = plan();
        p.read_source = 2; // not the task's node
        p.chunks = 1;
        let phases = p.build_phases();
        let read_phase = &phases[0];
        assert_eq!(read_phase.flows.len(), 2);
        assert!(read_phase
            .flows
            .iter()
            .any(|f| f.accounting == Accounting::Net));
    }

    #[test]
    fn empty_plan_still_yields_one_phase() {
        let p = TaskPlan {
            read_mb: 0.0,
            read_source: 0,
            fetch_mb: 0.0,
            fetch_sources: &[],
            cpu_sec: 0.0,
            spill_mb: 0.0,
            output_mb: 0.0,
            chunks: 2,
            node: 0,
            seed: 7,
        };
        let phases = p.build_phases();
        assert_eq!(phases.len(), 1);
    }

    #[test]
    fn io_phase_classification() {
        let phases = plan().build_phases();
        assert!(phases[0].is_io()); // read
        assert!(!phases[1].is_io()); // cpu
        assert!(phases[2].is_io()); // spill
    }

    #[test]
    fn task_state_lifecycle() {
        let mut t = TaskState::new(1, Arc::new(vec![0, 1]));
        assert!(t.queued);
        assert!(!t.has_live_attempt());
        t.attempts
            .push(AttemptState::new(0, plan().build_phases(), 0.0, false));
        t.queued = false;
        assert!(t.has_live_attempt());
        assert_eq!(t.live_attempts().collect::<Vec<_>>(), vec![0]);
        t.attempts[0].live = false;
        t.failures += 1;
        t.failed_on.push(0);
        assert!(!t.has_live_attempt());
    }

    #[test]
    fn speculative_clone_tracked_separately() {
        let mut t = TaskState::new(0, Arc::new(vec![0]));
        t.attempts
            .push(AttemptState::new(0, plan().build_phases(), 0.0, false));
        t.attempts
            .push(AttemptState::new(1, plan().build_phases(), 5.0, true));
        t.speculated = true;
        assert_eq!(t.live_attempts().count(), 2);
        assert!(t.attempts[1].speculative);
        assert!(!t.attempts[0].speculative);
    }

    #[test]
    #[should_panic(expected = "source")]
    fn fetch_without_sources_rejected() {
        let mut p = plan();
        p.fetch_mb = 10.0;
        p.fetch_sources = &[];
        let _ = p.build_phases();
    }
}
