//! Run reports: everything the bench harness needs to regenerate the
//! paper's tables and figures.

/// One monitoring interval as recorded in an executor's knowledge base
/// (mirrors [`sae_core::IntervalReport`] in a serialisable form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalRecord {
    /// Thread count the interval ran with.
    pub threads: usize,
    /// Accumulated epoll-wait seconds `ε`.
    pub epoll_wait: f64,
    /// MB moved during the interval.
    pub bytes: f64,
    /// Interval duration in seconds.
    pub duration: f64,
    /// Throughput `µ` in MB/s.
    pub throughput: f64,
    /// Congestion index `ζ`.
    pub zeta: f64,
    /// Average disk utilisation over the interval, `[0, 1]`.
    pub disk_util: f64,
}

impl From<sae_core::IntervalReport> for IntervalRecord {
    fn from(r: sae_core::IntervalReport) -> Self {
        Self {
            threads: r.threads,
            epoll_wait: r.epoll_wait,
            bytes: r.bytes,
            duration: r.duration,
            throughput: r.throughput,
            zeta: r.zeta,
            disk_util: r.disk_util,
        }
    }
}

/// Per-executor, per-stage outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorStageReport {
    /// Executor (= node) index.
    pub executor: usize,
    /// Thread count at stage end.
    pub final_threads: usize,
    /// Every thread count the executor used during the stage, in order
    /// (length 1 when no adaptation happened) — Figure 6's data.
    pub decisions: Vec<usize>,
    /// Total epoll-wait seconds over the stage.
    pub epoll_wait: f64,
    /// Total task I/O in MB over the stage.
    pub io_bytes: f64,
    /// Tasks this executor completed in the stage.
    pub tasks: usize,
    /// The controller's interval history (empty for non-adaptive runs) —
    /// Figure 7's data.
    pub intervals: Vec<IntervalRecord>,
    /// The controller's decision journal for the stage (empty for
    /// non-adaptive runs): one record per interval plus the terminal
    /// verdict, with the measurements and rationale behind each move.
    pub journal: Vec<sae_core::DecisionRecord>,
}

/// Per-stage outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage index.
    pub stage_id: usize,
    /// Stage name from the spec.
    pub name: String,
    /// `"io"` or `"generic"` (static classification).
    pub kind: &'static str,
    /// Stage start time (simulated seconds).
    pub started_at: f64,
    /// Stage duration (simulated seconds).
    pub duration: f64,
    /// Number of tasks.
    pub tasks: usize,
    /// Task attempts launched during the stage (equals `tasks` in a
    /// fault-free, non-speculative run).
    pub attempts: usize,
    /// Attempts that failed (transient faults or executor loss) and were
    /// retried.
    pub failed_attempts: usize,
    /// Speculative straggler clones launched.
    pub speculative_launched: usize,
    /// Speculative clones that won against the original attempt.
    pub speculative_wins: usize,
    /// Mean CPU busy fraction across nodes and time (exact integral).
    pub avg_cpu_busy: f64,
    /// Mean CPU iowait fraction (exact integral, clamped).
    pub avg_cpu_iowait: f64,
    /// Mean disk utilisation across nodes and time (exact integral).
    pub avg_disk_util: f64,
    /// MB read from disks (input reads + shuffle serves).
    pub disk_read_mb: f64,
    /// MB written to disks (spill + output + replication).
    pub disk_write_mb: f64,
    /// MB moved over the network.
    pub shuffle_mb: f64,
    /// Per-executor details.
    pub executors: Vec<ExecutorStageReport>,
    /// Sum of final thread counts across executors (the "x/128" labels of
    /// Figure 8).
    pub threads_used: usize,
    /// Cluster-aggregate disk throughput samples `(t, MB/s)` during the
    /// stage (Figure 12's series).
    pub disk_throughput_series: Vec<(f64, f64)>,
}

impl StageReport {
    /// Total disk I/O (reads + writes) in MB.
    pub fn disk_io_mb(&self) -> f64 {
        self.disk_read_mb + self.disk_write_mb
    }
}

/// The outcome of one job run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub job: String,
    /// Policy name (`"default"`, `"static"`, `"static-bestfit"`,
    /// `"dynamic"`).
    pub policy: String,
    /// Number of nodes in the run.
    pub nodes: usize,
    /// Total virtual cores in the run.
    pub total_cores: usize,
    /// End-to-end runtime in simulated seconds.
    pub total_runtime: f64,
    /// DFS input volume in MB.
    pub input_mb: f64,
    /// Per-stage reports in order.
    pub stages: Vec<StageReport>,
    /// Executors the driver blacklisted during the run, in order.
    pub blacklisted_executors: Vec<usize>,
}

impl JobReport {
    /// Total disk I/O activity in MB across the job (Table 2's metric).
    pub fn total_disk_io_mb(&self) -> f64 {
        self.stages.iter().map(StageReport::disk_io_mb).sum()
    }

    /// Task attempts launched across the job.
    pub fn total_attempts(&self) -> usize {
        self.stages.iter().map(|s| s.attempts).sum()
    }

    /// Failed task attempts across the job.
    pub fn total_failed_attempts(&self) -> usize {
        self.stages.iter().map(|s| s.failed_attempts).sum()
    }

    /// I/O amplification: disk activity relative to input size.
    ///
    /// Returns `None` when the job read no input.
    pub fn io_amplification(&self) -> Option<f64> {
        (self.input_mb > 0.0).then(|| self.total_disk_io_mb() / self.input_mb)
    }

    /// The job's full decision journal: every executor's records, in stage
    /// order and executor order within a stage. Empty unless the run used
    /// the adaptive policy.
    pub fn decision_journal(&self) -> Vec<sae_core::DecisionRecord> {
        self.stages
            .iter()
            .flat_map(|s| s.executors.iter())
            .flat_map(|e| e.journal.iter().cloned())
            .collect()
    }

    /// The decision journal serialized as JSONL (see
    /// [`sae_core::to_jsonl`]).
    pub fn decision_journal_jsonl(&self) -> String {
        sae_core::to_jsonl(&self.decision_journal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(read: f64, write: f64) -> StageReport {
        StageReport {
            stage_id: 0,
            name: "s".into(),
            kind: "io",
            started_at: 0.0,
            duration: 1.0,
            tasks: 1,
            attempts: 1,
            failed_attempts: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            avg_cpu_busy: 0.5,
            avg_cpu_iowait: 0.2,
            avg_disk_util: 0.8,
            disk_read_mb: read,
            disk_write_mb: write,
            shuffle_mb: 0.0,
            executors: Vec::new(),
            threads_used: 32,
            disk_throughput_series: Vec::new(),
        }
    }

    #[test]
    fn disk_io_sums_reads_and_writes() {
        assert_eq!(stage(10.0, 5.0).disk_io_mb(), 15.0);
    }

    #[test]
    fn amplification_relative_to_input() {
        let report = JobReport {
            job: "j".into(),
            policy: "default".into(),
            nodes: 4,
            total_cores: 128,
            total_runtime: 10.0,
            input_mb: 10.0,
            stages: vec![stage(10.0, 10.0), stage(5.0, 5.0)],
            blacklisted_executors: Vec::new(),
        };
        assert_eq!(report.total_disk_io_mb(), 30.0);
        assert_eq!(report.io_amplification(), Some(3.0));
        assert_eq!(report.total_attempts(), 2);
        assert_eq!(report.total_failed_attempts(), 0);
    }

    #[test]
    fn amplification_none_without_input() {
        let report = JobReport {
            job: "j".into(),
            policy: "default".into(),
            nodes: 1,
            total_cores: 32,
            total_runtime: 1.0,
            input_mb: 0.0,
            stages: Vec::new(),
            blacklisted_executors: Vec::new(),
        };
        assert_eq!(report.io_amplification(), None);
    }

    #[test]
    fn interval_record_from_core_report() {
        let core = sae_core::IntervalReport {
            threads: 4,
            epoll_wait: 1.0,
            bytes: 200.0,
            duration: 2.0,
            throughput: 100.0,
            zeta: 0.01,
            disk_util: 0.8,
        };
        let rec: IntervalRecord = core.into();
        assert_eq!(rec.threads, 4);
        assert_eq!(rec.throughput, 100.0);
    }
}
