//! The driver's pending-task queue: an indexed, locality-aware scheduler
//! core, plus the O(pending)-scan reference implementation it replaced.
//!
//! The driver assigns pending tasks to executors with a fixed preference
//! order (see [`ReferenceQueue::pick`], the original formulation):
//!
//! 1. the **first-queued** task that prefers the executor (data-local) and
//!    has not already failed on it,
//! 2. else the first-queued task that has not failed on it,
//! 3. else the queue head — a task that failed on every free executor
//!    still reruns somewhere rather than wedging the job.
//!
//! The reference scans the whole pending vector (twice) per assignment and
//! pays `Vec::remove` to dequeue, which makes every `PoolSizeChanged`
//! re-match O(nodes × pending) — quadratic-to-cubic in task count over a
//! stage. [`PendingQueue`] answers the same three questions from indexes:
//!
//! * a **global FIFO** of `(seq, task)` entries in insertion order — `seq`
//!   is a per-stage monotone counter, so FIFO order *is* queue order;
//! * **per-node locality lanes**: a task is appended to the lane of every
//!   node in its preferred (replica) list at enqueue time. Tasks whose
//!   preferred list covers the whole cluster (shuffle stages) skip the
//!   lanes — for them criterion 1 collapses into criterion 2 on the FIFO.
//!
//! Entries are **lazily invalidated**: dequeuing just flips the task's
//! queued flag (O(1)); a stale `(seq, task)` entry — the task is no longer
//! queued, or was re-queued under a fresher `seq` — is dropped when it
//! surfaces at a lane or FIFO head. Each entry is pushed once and dropped
//! at most once, so assignment is amortized O(replication) per task, and
//! the selection sequence is **exactly** the reference scan's (pinned by
//! proptests in this module and `tests/sched_equivalence.rs`).
//!
//! [`RunningMedian`] supports the speculative-execution straggler
//! threshold: the reference cloned and sorted the stage's completed-attempt
//! durations on every metrics tick; the two-heap form pays O(log n) per
//! completion and O(1) per query for the same (upper) median.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Indexed pending-task queue with per-node locality lanes.
///
/// See the [module docs](self) for the selection contract. All task ids
/// are dense indices `0..tasks` as passed to [`PendingQueue::reset`].
#[derive(Debug, Clone, Default)]
pub struct PendingQueue {
    nodes: usize,
    /// Global insertion-order queue of `(seq, task)`.
    fifo: VecDeque<(u64, usize)>,
    /// Per-node locality lanes of `(seq, task)`.
    lanes: Vec<VecDeque<(u64, usize)>>,
    /// Per task: `seq` of its current residence (stale entries mismatch).
    seq_of: Vec<u64>,
    /// Per task: whether it currently sits in the queue.
    queued: Vec<bool>,
    /// Per task: preferred list covers every node (lanes skipped).
    prefers_all: Vec<bool>,
    next_seq: u64,
    len: usize,
    /// Queued tasks with `prefers_all` — when zero, criterion 1 never
    /// needs the FIFO and the walk stops at the first non-failed entry.
    prefers_all_live: usize,
}

impl PendingQueue {
    /// Creates an empty queue; call [`PendingQueue::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the queue and resizes it for a stage of `tasks` tasks on
    /// `nodes` nodes. Buffers are reused across stages.
    pub fn reset(&mut self, tasks: usize, nodes: usize) {
        self.nodes = nodes;
        self.fifo.clear();
        self.lanes.resize_with(nodes, VecDeque::new);
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.seq_of.clear();
        self.seq_of.resize(tasks, 0);
        self.queued.clear();
        self.queued.resize(tasks, false);
        self.prefers_all.clear();
        self.prefers_all.resize(tasks, false);
        self.next_seq = 0;
        self.len = 0;
        self.prefers_all_live = 0;
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no task is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `task` currently sits in the queue.
    pub fn contains(&self, task: usize) -> bool {
        self.queued[task]
    }

    /// Enqueues `task` with the given preferred (data-local) nodes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the task is already queued.
    pub fn push(&mut self, task: usize, preferred: &[usize]) {
        debug_assert!(!self.queued[task], "task {task} is already queued");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_of[task] = seq;
        self.queued[task] = true;
        self.fifo.push_back((seq, task));
        // Replica lists hold distinct nodes, so a full-length list covers
        // the cluster: locality holds everywhere and criterion 1 degrades
        // to criterion 2, answered from the FIFO. Feeding such tasks into
        // every lane would cost O(nodes) per task — the exact blow-up this
        // structure exists to avoid.
        let all = preferred.len() >= self.nodes;
        self.prefers_all[task] = all;
        if all {
            self.prefers_all_live += 1;
        } else {
            for &node in preferred {
                self.lanes[node].push_back((seq, task));
            }
        }
        self.len += 1;
    }

    fn entry_live(&self, seq: u64, task: usize) -> bool {
        self.queued[task] && self.seq_of[task] == seq
    }

    /// Dequeues the task the reference scan would hand `executor`, or
    /// `None` when the queue is empty.
    ///
    /// `is_failed(task)` must report whether the task already failed on
    /// `executor`, and must be monotone within a stage (failures are never
    /// forgotten) — lane entries that report failed are dropped for good.
    pub fn pick(&mut self, executor: usize, is_failed: impl Fn(usize) -> bool) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Criterion 1 via the executor's lane: drop stale heads, and heads
        // that already failed here (permanently ineligible for this lane —
        // a requeue re-enters under a fresh seq anyway).
        let mut lane_cand: Option<(u64, usize)> = None;
        while let Some(&(seq, task)) = self.lanes[executor].front() {
            if !self.entry_live(seq, task) || is_failed(task) {
                self.lanes[executor].pop_front();
                continue;
            }
            lane_cand = Some((seq, task));
            break;
        }
        // Criteria 1 (prefers-all tasks), 2 and 3 via the FIFO. Stale
        // heads are dropped permanently; past the head the walk skips
        // stale entries in place and stops once every open question is
        // settled — with no prefers-all tasks queued that is the first
        // live non-failed entry, i.e. O(1) in the fault-free case.
        while let Some(&(seq, task)) = self.fifo.front() {
            if self.entry_live(seq, task) {
                break;
            }
            self.fifo.pop_front();
        }
        let need_all = self.prefers_all_live > 0;
        let mut first_live: Option<(u64, usize)> = None;
        let mut fifo_pref: Option<(u64, usize)> = None;
        let mut non_failed: Option<(u64, usize)> = None;
        for &(seq, task) in self.fifo.iter() {
            // Later entries have strictly larger seqs, so once the lane
            // candidate outranks everything still ahead, criterion 1 is
            // settled; with criterion 2 also settled the walk is done.
            let crit1_settled = !need_all
                || fifo_pref.is_some()
                || lane_cand.is_some_and(|(lane_seq, _)| lane_seq < seq);
            if non_failed.is_some() && crit1_settled {
                break;
            }
            if !self.entry_live(seq, task) {
                continue;
            }
            if first_live.is_none() {
                first_live = Some((seq, task));
            }
            if !is_failed(task) {
                if non_failed.is_none() {
                    non_failed = Some((seq, task));
                }
                if need_all && fifo_pref.is_none() && self.prefers_all[task] {
                    fifo_pref = Some((seq, task));
                }
            }
        }
        let preferred = match (lane_cand, fifo_pref) {
            (Some(a), Some(b)) => Some(if a.0 < b.0 { a } else { b }),
            (a, b) => a.or(b),
        };
        let (_, task) = preferred
            .or(non_failed)
            .or(first_live)
            .expect("len > 0 implies a live FIFO entry");
        self.queued[task] = false;
        self.len -= 1;
        if self.prefers_all[task] {
            self.prefers_all_live -= 1;
        }
        Some(task)
    }
}

/// The original O(pending)-scan pending queue, kept as the behavioural
/// reference: [`PendingQueue`] must dequeue the exact same task sequence.
///
/// Compiled for tests and under the `reference-impl` feature (mirroring
/// `sae-sim`'s reference kernel) so benchmarks can race the two.
#[cfg(any(test, feature = "reference-impl"))]
#[derive(Debug, Clone, Default)]
pub struct ReferenceQueue {
    pending: Vec<usize>,
}

#[cfg(any(test, feature = "reference-impl"))]
impl ReferenceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the queue (capacity is retained).
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no task is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues `task` at the back.
    pub fn push(&mut self, task: usize) {
        self.pending.push(task);
    }

    /// Dequeues a task for `executor`: the first pending task preferring
    /// it that has not failed on it, else the first that has not failed on
    /// it, else the queue head. This is the pre-index driver scan, verbatim.
    pub fn pick(
        &mut self,
        _executor: usize,
        is_preferred: impl Fn(usize) -> bool,
        is_failed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let pos = self
            .pending
            .iter()
            .position(|&t| is_preferred(t) && !is_failed(t))
            .or_else(|| self.pending.iter().position(|&t| !is_failed(t)))
            .unwrap_or(0);
        Some(self.pending.remove(pos))
    }
}

/// The engine's pending queue: the indexed implementation in production,
/// the reference scan when equivalence tests or benchmarks ask for it.
#[derive(Debug, Clone)]
pub(crate) enum Scheduler {
    /// The indexed locality-aware queue.
    Indexed(PendingQueue),
    /// The O(pending)-scan reference (equivalence testing only).
    #[cfg(any(test, feature = "reference-impl"))]
    Reference(ReferenceQueue),
}

impl Scheduler {
    pub(crate) fn reset(&mut self, tasks: usize, nodes: usize) {
        match self {
            Scheduler::Indexed(q) => q.reset(tasks, nodes),
            #[cfg(any(test, feature = "reference-impl"))]
            Scheduler::Reference(q) => {
                let _ = (tasks, nodes);
                q.reset();
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            Scheduler::Indexed(q) => q.is_empty(),
            #[cfg(any(test, feature = "reference-impl"))]
            Scheduler::Reference(q) => q.is_empty(),
        }
    }

    pub(crate) fn push(&mut self, task: usize, preferred: &[usize]) {
        match self {
            Scheduler::Indexed(q) => q.push(task, preferred),
            #[cfg(any(test, feature = "reference-impl"))]
            Scheduler::Reference(q) => {
                let _ = preferred;
                q.push(task);
            }
        }
    }

    pub(crate) fn pick(
        &mut self,
        executor: usize,
        is_preferred: impl Fn(usize) -> bool,
        is_failed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        match self {
            Scheduler::Indexed(q) => {
                let _ = &is_preferred;
                q.pick(executor, is_failed)
            }
            #[cfg(any(test, feature = "reference-impl"))]
            Scheduler::Reference(q) => q.pick(executor, is_preferred, is_failed),
        }
    }
}

/// `f64` with the IEEE-754 total order, for heap storage.
#[derive(Debug, Clone, Copy)]
struct TotalF64(f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incremental running median over a stream of finite values.
///
/// Two-heap formulation: a max-heap of the lower half and a min-heap of
/// the upper half, rebalanced so the upper heap holds ⌈n/2⌉ values. The
/// reported median is its minimum — the element at index `n / 2` of the
/// sorted stream, exactly what the reference's clone-and-sort produced.
/// Push is O(log n), query is O(1).
#[derive(Debug, Clone, Default)]
pub struct RunningMedian {
    /// Max-heap: the smaller ⌊n/2⌋ values.
    lo: BinaryHeap<TotalF64>,
    /// Min-heap: the larger ⌈n/2⌉ values; its minimum is the median.
    hi: BinaryHeap<Reverse<TotalF64>>,
}

impl RunningMedian {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values pushed since the last clear.
    pub fn len(&self) -> usize {
        self.lo.len() + self.hi.len()
    }

    /// Whether no value has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every value (capacity is retained).
    pub fn clear(&mut self) {
        self.lo.clear();
        self.hi.clear();
    }

    /// Adds a value.
    ///
    /// # Panics
    ///
    /// Panics (debug) on a non-finite value.
    pub fn push(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "median over non-finite value {value}");
        let v = TotalF64(value);
        match self.hi.peek() {
            Some(&Reverse(hi_min)) if v < hi_min => self.lo.push(v),
            _ => self.hi.push(Reverse(v)),
        }
        if self.hi.len() > self.lo.len() + 1 {
            let Reverse(v) = self.hi.pop().expect("hi is non-empty");
            self.lo.push(v);
        } else if self.lo.len() > self.hi.len() {
            let v = self.lo.pop().expect("lo is non-empty");
            self.hi.push(Reverse(v));
        }
    }

    /// The upper median (index `n / 2` of the sorted stream), or `None`
    /// when empty.
    pub fn median(&self) -> Option<f64> {
        self.hi.peek().map(|&Reverse(TotalF64(v))| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order_without_locality_or_failures() {
        let mut q = PendingQueue::new();
        q.reset(4, 2);
        for t in 0..4 {
            q.push(t, &[0, 1]); // covers all nodes: no lanes
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.pick(1, |_| false), Some(0));
        assert_eq!(q.pick(0, |_| false), Some(1));
        assert_eq!(q.pick(0, |_| false), Some(2));
        assert_eq!(q.pick(1, |_| false), Some(3));
        assert_eq!(q.pick(0, |_| false), None);
        assert!(q.is_empty());
    }

    #[test]
    fn locality_beats_fifo_order() {
        let mut q = PendingQueue::new();
        q.reset(3, 3);
        q.push(0, &[1]);
        q.push(1, &[2]);
        q.push(2, &[0]);
        // Node 0 prefers task 2 even though tasks 0 and 1 queued earlier.
        assert_eq!(q.pick(0, |_| false), Some(2));
        // No task left prefers node 0: fall back to the queue head.
        assert_eq!(q.pick(0, |_| false), Some(0));
        assert_eq!(q.pick(2, |_| false), Some(1));
    }

    #[test]
    fn failed_tasks_are_avoided_until_unavoidable() {
        let mut q = PendingQueue::new();
        q.reset(2, 2);
        q.push(0, &[0]);
        q.push(1, &[0]);
        // Task 0 failed on node 0: its lane head is skipped, task 1 wins.
        assert_eq!(q.pick(0, |t| t == 0), Some(1));
        // Only the failed task remains — criterion 3 hands it out anyway.
        assert_eq!(q.pick(0, |t| t == 0), Some(0));
    }

    #[test]
    fn requeued_task_reenters_at_the_back() {
        let mut q = PendingQueue::new();
        q.reset(3, 2);
        q.push(0, &[0]);
        q.push(1, &[0]);
        assert_eq!(q.pick(0, |_| false), Some(0));
        q.push(0, &[0]); // retry: behind task 1 now
        q.push(2, &[0]);
        assert_eq!(q.pick(0, |_| false), Some(1));
        assert_eq!(q.pick(0, |_| false), Some(0));
        assert_eq!(q.pick(0, |_| false), Some(2));
    }

    #[test]
    fn reset_reuses_buffers_cleanly() {
        let mut q = PendingQueue::new();
        q.reset(2, 2);
        q.push(0, &[0]);
        q.push(1, &[1]);
        assert_eq!(q.pick(0, |_| false), Some(0));
        q.reset(3, 3);
        assert!(q.is_empty());
        q.push(2, &[1]);
        assert_eq!(q.pick(1, |_| false), Some(2));
        assert_eq!(q.pick(1, |_| false), None);
    }

    #[test]
    fn running_median_matches_sorted_upper_median() {
        let mut m = RunningMedian::new();
        assert_eq!(m.median(), None);
        let mut values = Vec::new();
        for &v in &[5.0, 1.0, 3.0, 3.0, 9.0, 2.0, 7.0] {
            m.push(v);
            values.push(v);
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(m.median(), Some(sorted[sorted.len() / 2]));
        }
        assert_eq!(m.len(), 7);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.median(), None);
    }

    /// One scripted action against both queue implementations.
    #[derive(Debug, Clone)]
    enum Op {
        /// Enqueue the task (skipped if it is already queued).
        Push(usize),
        /// Dequeue for the executor; results must match.
        Pick(usize),
        /// Record a task failure on a node (monotone, as in the engine).
        Fail(usize, usize),
    }

    const TASKS: usize = 12;

    /// Raw op tuples `(kind, task-ish, node-ish)`; the task/node components
    /// are reduced modulo the actual domain sizes inside the property.
    fn arb_raw_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        prop::collection::vec((0u8..3, 0usize..64, 0usize..64), 1..120)
    }

    /// Raw per-task preference seeds: `full_cluster` flag (shuffle-style
    /// "prefers everywhere" list) or a replica-style short list.
    fn arb_raw_preferred() -> impl Strategy<Value = Vec<(bool, Vec<usize>)>> {
        prop::collection::vec(
            (prop::bool::ANY, prop::collection::vec(0usize..64, 1..4)),
            TASKS,
        )
    }

    fn resolve_preferred(raw: Vec<(bool, Vec<usize>)>, nodes: usize) -> Vec<Vec<usize>> {
        raw.into_iter()
            .map(|(full, list)| {
                if full {
                    (0..nodes).collect()
                } else {
                    let mut list: Vec<usize> = list.into_iter().map(|n| n % nodes).collect();
                    list.sort_unstable();
                    list.dedup();
                    list
                }
            })
            .collect()
    }

    proptest! {
        /// The indexed queue dequeues the exact sequence of the reference
        /// scan under arbitrary interleavings of enqueues, dequeues for
        /// arbitrary executors, and monotone failure recording.
        #[test]
        fn indexed_matches_reference_scan(
            nodes in 2usize..6,
            raw_preferred in arb_raw_preferred(),
            raw_ops in arb_raw_ops(),
        ) {
            let preferred = resolve_preferred(raw_preferred, nodes);
            let tasks = preferred.len();
            let ops: Vec<Op> = raw_ops
                .into_iter()
                .map(|(kind, t, n)| match kind {
                    0 => Op::Push(t % tasks),
                    1 => Op::Pick(n % nodes),
                    _ => Op::Fail(t % tasks, n % nodes),
                })
                .collect();
            let mut indexed = PendingQueue::new();
            indexed.reset(tasks, nodes);
            let mut reference = ReferenceQueue::new();
            let mut queued = vec![false; tasks];
            let mut failed = vec![vec![false; nodes]; tasks];
            for op in ops {
                match op {
                    Op::Push(t) => {
                        if !queued[t] {
                            queued[t] = true;
                            indexed.push(t, &preferred[t]);
                            reference.push(t);
                        }
                    }
                    Op::Pick(e) => {
                        let a = indexed.pick(e, |t| failed[t][e]);
                        let b = reference.pick(
                            e,
                            |t| preferred[t].contains(&e),
                            |t| failed[t][e],
                        );
                        prop_assert_eq!(a, b, "pick diverged for executor {}", e);
                        if let Some(t) = a {
                            queued[t] = false;
                        }
                        prop_assert_eq!(indexed.len(), reference.len());
                    }
                    Op::Fail(t, n) => {
                        // Mirrors the engine: failures are only booked for
                        // tasks that are not sitting in the queue (they are
                        // requeued afterwards, under a fresh seq).
                        if !queued[t] {
                            failed[t][n] = true;
                        }
                    }
                }
            }
        }
    }
}
