//! Per-node executor state: the managed element of the MAPE-K loop.

use sae_core::{AdaptiveController, TunablePool};

/// A bounded task-slot pool: the simulated analogue of the executor's
/// `ThreadPoolExecutor`. Implements [`TunablePool`] so the controller (and
/// tests) can resize it through the same trait as the real pool in
/// `sae-pool`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPool {
    max_size: usize,
    running: usize,
}

impl SlotPool {
    /// Creates a pool with the given maximum.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(max_size: usize) -> Self {
        assert!(max_size > 0, "pool size must be positive");
        Self {
            max_size,
            running: 0,
        }
    }

    /// Number of tasks currently running.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Free slots under the current maximum (0 when shrunk below the
    /// running count — running tasks are never aborted).
    pub fn free_slots(&self) -> usize {
        self.max_size.saturating_sub(self.running)
    }

    /// Reserves a slot for a task.
    pub fn task_started(&mut self) {
        self.running += 1;
    }

    /// Releases a slot.
    ///
    /// # Panics
    ///
    /// Panics if no task is running.
    pub fn task_finished(&mut self) {
        assert!(self.running > 0, "no running task to finish");
        self.running -= 1;
    }
}

impl TunablePool for SlotPool {
    fn max_pool_size(&self) -> usize {
        self.max_size
    }

    fn set_max_pool_size(&mut self, size: usize) {
        assert!(size > 0, "pool size must be positive");
        self.max_size = size;
    }
}

/// Cumulative per-stage I/O statistics of one executor — the raw sensor
/// data the paper's monitor collects via `strace` (epoll wait) and the
/// Spark metrics system (task throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutorStats {
    /// Seconds tasks spent blocked in I/O phases since stage start.
    pub epoll_wait: f64,
    /// MB of task I/O (reads + writes + shuffle transfers) since stage
    /// start.
    pub io_bytes: f64,
    /// Tasks completed since stage start.
    pub tasks_finished: usize,
}

/// The full per-executor runtime state.
#[derive(Debug)]
pub(crate) struct ExecutorState {
    /// The managed slot pool.
    pub pool: SlotPool,
    /// Per-stage sensor counters.
    pub stats: ExecutorStats,
    /// The MAPE-K controller, present under the adaptive policy.
    pub controller: Option<AdaptiveController>,
}

impl ExecutorState {
    pub fn new(initial_threads: usize, controller: Option<AdaptiveController>) -> Self {
        Self {
            pool: SlotPool::new(initial_threads),
            stats: ExecutorStats::default(),
            controller,
        }
    }

    /// Resets the per-stage counters at a stage boundary.
    pub fn begin_stage(&mut self) {
        self.stats = ExecutorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_accounting() {
        let mut p = SlotPool::new(4);
        assert_eq!(p.free_slots(), 4);
        p.task_started();
        p.task_started();
        assert_eq!(p.running(), 2);
        assert_eq!(p.free_slots(), 2);
        p.task_finished();
        assert_eq!(p.free_slots(), 3);
    }

    #[test]
    fn shrink_below_running_gives_zero_free_slots() {
        let mut p = SlotPool::new(8);
        for _ in 0..6 {
            p.task_started();
        }
        p.set_max_pool_size(2);
        assert_eq!(p.free_slots(), 0);
        assert_eq!(p.running(), 6); // running tasks keep running
        for _ in 0..5 {
            p.task_finished();
        }
        assert_eq!(p.free_slots(), 1);
    }

    #[test]
    fn grow_opens_slots_immediately() {
        let mut p = SlotPool::new(2);
        p.task_started();
        p.task_started();
        assert_eq!(p.free_slots(), 0);
        p.set_max_pool_size(4);
        assert_eq!(p.free_slots(), 2);
    }

    #[test]
    fn tunable_pool_trait_roundtrip() {
        let mut p = SlotPool::new(32);
        assert_eq!(p.max_pool_size(), 32);
        p.set_max_pool_size(8);
        assert_eq!(p.max_pool_size(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pool_rejected() {
        let _ = SlotPool::new(0);
    }

    #[test]
    #[should_panic(expected = "no running task")]
    fn underflow_rejected() {
        let mut p = SlotPool::new(1);
        p.task_finished();
    }

    #[test]
    fn begin_stage_resets_stats() {
        let mut e = ExecutorState::new(4, None);
        e.stats.epoll_wait = 5.0;
        e.stats.tasks_finished = 3;
        e.begin_stage();
        assert_eq!(e.stats, ExecutorStats::default());
    }
}
