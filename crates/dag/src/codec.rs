//! A length-prefixed binary frame codec for the driver↔executor protocol.
//!
//! The simulated engine delivers [`Message`] values in memory; the live
//! runtime (`sae-live`) moves the *same* values across real TCP sockets,
//! which is where the paper's protocol extension (§5.4) meets
//! serialization for the first time. The wire format is deliberately tiny
//! and hand-rolled — no external serialization framework is pulled in:
//!
//! ```text
//! frame := [body_len: u32 BE] [body: body_len bytes]
//! body  := [tag: u8] [field: u64 BE]*
//! ```
//!
//! Every [`Message`] variant gets one tag byte followed by its fields as
//! big-endian `u64`s, so encodings are fixed-size per variant and
//! trivially auditable. Decoding is *total*: malformed input — an unknown
//! tag, a frame whose declared length does not match its variant, or a
//! length prefix beyond [`MAX_BODY_LEN`] — returns a [`FrameError`], never
//! panics, and an incomplete buffer simply reports "need more bytes"
//! ([`decode_frame`] returning `Ok(None)`), which is what a streaming
//! socket reader wants.
//!
//! The framing helpers ([`split_frame`], [`put_u64`], [`get_u64`]) are
//! public so higher layers (the live runtime's control envelope) can embed
//! message bodies in their own tag space without reinventing the framing.

use std::fmt;

use crate::Message;

/// Size of the `u32` length prefix in bytes.
pub const LEN_PREFIX: usize = 4;

/// Maximum accepted frame body length in bytes.
///
/// Protocol messages are tens of bytes; anything larger is a corrupt or
/// hostile length prefix and is rejected before any allocation happens.
pub const MAX_BODY_LEN: usize = 4096;

const TAG_ASSIGN_TASK: u8 = 0;
const TAG_POOL_SIZE_CHANGED: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_TASK_FAILED: u8 = 3;

/// Why a buffer failed to decode. Malformed input is always reported
/// through this type — the codec never panics on wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_BODY_LEN`].
    Oversized {
        /// Declared body length.
        len: usize,
    },
    /// The body's first byte is not a known message tag.
    UnknownTag(u8),
    /// The body is shorter than its variant's fixed field layout.
    Truncated {
        /// Bytes the variant requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The body is longer than its variant's fixed field layout.
    TrailingBytes {
        /// Surplus bytes after the last field.
        extra: usize,
    },
    /// A `u64` field does not fit this platform's `usize`.
    FieldOverflow(u64),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_BODY_LEN}-byte cap"
                )
            }
            FrameError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame body: needed {needed} bytes, got {got}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            FrameError::FieldOverflow(v) => {
                write!(f, "field value {v} does not fit a usize")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends `v` to `out` as a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads the big-endian `u64` at byte offset `at` of `body`.
pub fn get_u64(body: &[u8], at: usize) -> Result<u64, FrameError> {
    let end = at.checked_add(8).ok_or(FrameError::Truncated {
        needed: usize::MAX,
        got: body.len(),
    })?;
    let bytes = body.get(at..end).ok_or(FrameError::Truncated {
        needed: end,
        got: body.len(),
    })?;
    Ok(u64::from_be_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Reads the `u64` at offset `at` and converts it to `usize`.
pub fn get_usize(body: &[u8], at: usize) -> Result<usize, FrameError> {
    let v = get_u64(body, at)?;
    usize::try_from(v).map_err(|_| FrameError::FieldOverflow(v))
}

/// Appends `v` to `out` as the big-endian bit pattern of an `f64`.
///
/// Floats ride the wire as [`f64::to_bits`] so a value round-trips
/// *exactly* — an incrementally streamed telemetry sample must compare
/// bit-identical to the same sample replayed from a journal at shutdown.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Reads the `f64` whose bit pattern sits at byte offset `at` of `body`.
pub fn get_f64(body: &[u8], at: usize) -> Result<f64, FrameError> {
    Ok(f64::from_bits(get_u64(body, at)?))
}

/// The cross-process trace correlation key: everything needed to place an
/// event from *any* process of a fleet onto one causally-ordered timeline.
///
/// Executors stamp per-task telemetry frames with this key; receivers
/// (driver or job server) use it to merge events from many OS processes
/// into a single Perfetto trace incrementally, while the run is still in
/// flight, instead of waiting for a shutdown-time journal merge.
///
/// Encoded as five consecutive big-endian `u64` fields — see
/// [`TraceKey::encode`] / [`TraceKey::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The job the event belongs to.
    pub job: u64,
    /// Stage index within the job.
    pub stage: usize,
    /// Task index within the stage.
    pub task: usize,
    /// Attempt number of the task execution.
    pub attempt: usize,
    /// The executor incarnation (registration epoch) that produced the
    /// event — what distinguishes a span from a pre-crash incarnation.
    pub epoch: u64,
}

impl TraceKey {
    /// The key's encoded width: five `u64` fields.
    pub const FIELDS: usize = 5;

    /// Appends the key's five fields to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.job);
        put_u64(out, self.stage as u64);
        put_u64(out, self.task as u64);
        put_u64(out, self.attempt as u64);
        put_u64(out, self.epoch);
    }

    /// Reads a key from byte offset `at` of `body`.
    pub fn decode(body: &[u8], at: usize) -> Result<Self, FrameError> {
        Ok(Self {
            job: get_u64(body, at)?,
            stage: get_usize(body, at + 8)?,
            task: get_usize(body, at + 16)?,
            attempt: get_usize(body, at + 24)?,
            epoch: get_u64(body, at + 32)?,
        })
    }
}

/// Appends the tag-and-fields body of `msg` to `out` (no length prefix).
pub fn encode_body(msg: &Message, out: &mut Vec<u8>) {
    match *msg {
        Message::AssignTask { task, executor } => {
            out.push(TAG_ASSIGN_TASK);
            put_u64(out, task as u64);
            put_u64(out, executor as u64);
        }
        Message::PoolSizeChanged { executor, size } => {
            out.push(TAG_POOL_SIZE_CHANGED);
            put_u64(out, executor as u64);
            put_u64(out, size as u64);
        }
        Message::Heartbeat { executor } => {
            out.push(TAG_HEARTBEAT);
            put_u64(out, executor as u64);
        }
        Message::TaskFailed {
            task,
            executor,
            attempt,
        } => {
            out.push(TAG_TASK_FAILED);
            put_u64(out, task as u64);
            put_u64(out, executor as u64);
            put_u64(out, attempt as u64);
        }
    }
}

/// Checks that `body` is exactly `1 + 8 * fields` bytes long.
fn expect_len(body: &[u8], fields: usize) -> Result<(), FrameError> {
    let needed = 1 + 8 * fields;
    match body.len() {
        got if got < needed => Err(FrameError::Truncated { needed, got }),
        got if got > needed => Err(FrameError::TrailingBytes {
            extra: got - needed,
        }),
        _ => Ok(()),
    }
}

/// Decodes a complete tag-and-fields body produced by [`encode_body`].
///
/// The body must match its variant's layout exactly; surplus or missing
/// bytes are errors (a stream codec must not guess where a frame ends).
pub fn decode_body(body: &[u8]) -> Result<Message, FrameError> {
    let &tag = body
        .first()
        .ok_or(FrameError::Truncated { needed: 1, got: 0 })?;
    match tag {
        TAG_ASSIGN_TASK => {
            expect_len(body, 2)?;
            Ok(Message::AssignTask {
                task: get_usize(body, 1)?,
                executor: get_usize(body, 9)?,
            })
        }
        TAG_POOL_SIZE_CHANGED => {
            expect_len(body, 2)?;
            Ok(Message::PoolSizeChanged {
                executor: get_usize(body, 1)?,
                size: get_usize(body, 9)?,
            })
        }
        TAG_HEARTBEAT => {
            expect_len(body, 1)?;
            Ok(Message::Heartbeat {
                executor: get_usize(body, 1)?,
            })
        }
        TAG_TASK_FAILED => {
            expect_len(body, 3)?;
            Ok(Message::TaskFailed {
                task: get_usize(body, 1)?,
                executor: get_usize(body, 9)?,
                attempt: get_usize(body, 17)?,
            })
        }
        other => Err(FrameError::UnknownTag(other)),
    }
}

/// Appends a full length-prefixed frame for `msg` to `out`.
pub fn encode_frame(msg: &Message, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0; LEN_PREFIX]);
    encode_body(msg, out);
    let body_len = out.len() - len_at - LEN_PREFIX;
    debug_assert!(body_len <= MAX_BODY_LEN);
    out[len_at..len_at + LEN_PREFIX].copy_from_slice(&(body_len as u32).to_be_bytes());
}

/// Splits the first complete frame off `buf`, returning its body and the
/// total bytes consumed (prefix + body).
///
/// Returns `Ok(None)` when the buffer holds only part of a frame — read
/// more bytes and retry. This is the generic framing layer: callers decide
/// what the body means (the live runtime reuses it for its own envelope).
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, FrameError> {
    let Some(prefix) = buf.get(..LEN_PREFIX) else {
        return Ok(None);
    };
    let len = u32::from_be_bytes(prefix.try_into().expect("4-byte slice")) as usize;
    if len > MAX_BODY_LEN {
        return Err(FrameError::Oversized { len });
    }
    match buf.get(LEN_PREFIX..LEN_PREFIX + len) {
        Some(body) => Ok(Some((body, LEN_PREFIX + len))),
        None => Ok(None),
    }
}

/// Decodes the first complete [`Message`] frame in `buf`, returning the
/// message and the bytes consumed, or `Ok(None)` if more bytes are needed.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Message, usize)>, FrameError> {
    match split_frame(buf)? {
        Some((body, consumed)) => Ok(Some((decode_body(body)?, consumed))),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Message> {
        vec![
            Message::AssignTask {
                task: 7,
                executor: 3,
            },
            Message::PoolSizeChanged {
                executor: 1,
                size: 16,
            },
            Message::Heartbeat { executor: 0 },
            Message::TaskFailed {
                task: 12,
                executor: 2,
                attempt: 1,
            },
        ]
    }

    #[test]
    fn frame_round_trip_all_variants() {
        for msg in all_variants() {
            let mut buf = Vec::new();
            encode_frame(&msg, &mut buf);
            let (decoded, consumed) = decode_frame(&buf).unwrap().unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn stream_of_frames_decodes_in_order() {
        let mut buf = Vec::new();
        for msg in all_variants() {
            encode_frame(&msg, &mut buf);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((msg, consumed)) = decode_frame(&buf[offset..]).unwrap() {
            decoded.push(msg);
            offset += consumed;
        }
        assert_eq!(decoded, all_variants());
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn incomplete_buffer_asks_for_more() {
        let mut buf = Vec::new();
        encode_frame(&Message::Heartbeat { executor: 5 }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_BODY_LEN as u32) + 1).to_be_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(FrameError::Oversized {
                len: MAX_BODY_LEN + 1
            })
        );
    }

    #[test]
    fn truncated_body_rejected() {
        // A heartbeat frame whose declared length lies about the payload.
        let mut body = vec![TAG_HEARTBEAT];
        body.extend_from_slice(&[0; 4]); // 4 of the 8 field bytes
        let mut buf = ((body.len()) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(
            decode_frame(&buf),
            Err(FrameError::Truncated { needed: 9, got: 5 })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = vec![TAG_HEARTBEAT];
        body.extend_from_slice(&[0; 10]); // 8 field bytes + 2 extra
        let mut buf = ((body.len()) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(
            decode_frame(&buf),
            Err(FrameError::TrailingBytes { extra: 2 })
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let body = [0xEEu8; 9];
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(decode_frame(&buf), Err(FrameError::UnknownTag(0xEE)));
    }

    #[test]
    fn empty_body_rejected() {
        let buf = 0u32.to_be_bytes();
        assert_eq!(
            decode_frame(&buf),
            Err(FrameError::Truncated { needed: 1, got: 0 })
        );
    }

    #[test]
    fn trace_key_round_trips_at_any_offset() {
        let key = TraceKey {
            job: 42,
            stage: 3,
            task: 1_000_000,
            attempt: 2,
            epoch: 9,
        };
        for pad in [0usize, 1, 9] {
            let mut buf = vec![0xAA; pad];
            key.encode(&mut buf);
            assert_eq!(buf.len(), pad + 8 * TraceKey::FIELDS);
            assert_eq!(TraceKey::decode(&buf, pad).unwrap(), key);
        }
        // Truncated buffers report "need more", never panic.
        let mut buf = Vec::new();
        key.encode(&mut buf);
        assert!(TraceKey::decode(&buf[..buf.len() - 1], 0).is_err());
    }

    #[test]
    fn f64_fields_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5, 1e-300, f64::INFINITY, 0.1 + 0.2] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let back = get_f64(&buf, 0).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn errors_display_without_panicking() {
        for e in [
            FrameError::Oversized { len: 1 << 20 },
            FrameError::UnknownTag(9),
            FrameError::Truncated { needed: 9, got: 2 },
            FrameError::TrailingBytes { extra: 3 },
            FrameError::FieldOverflow(u64::MAX),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
