//! Jobs as operator pipelines, split into stages.

use sae_core::{StageInfo, StageKind};

/// Dataset operators, mirroring Spark's RDD API surface.
///
/// Only the distinction that matters to the static solution is modelled
/// faithfully: which operators touch storage. `textFile` marks a stage as
/// I/O on the read side; the save actions mark it on the write side (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the Spark API 1:1
pub enum Operator {
    TextFile,
    SaveAsTextFile,
    SaveAsHadoopFile,
    Map,
    FlatMap,
    Filter,
    MapPartitions,
    Sample,
    SortByKey,
    ReduceByKey,
    GroupByKey,
    AggregateByKey,
    Join,
    Distinct,
    Count,
    Collect,
    Cache,
}

impl Operator {
    /// Whether this operator reads from storage.
    pub fn reads_storage(self) -> bool {
        matches!(self, Operator::TextFile)
    }

    /// Whether this operator writes to storage.
    pub fn writes_storage(self) -> bool {
        matches!(self, Operator::SaveAsTextFile | Operator::SaveAsHadoopFile)
    }

    /// Whether this operator requires a shuffle boundary after it.
    pub fn shuffles(self) -> bool {
        matches!(
            self,
            Operator::SortByKey
                | Operator::ReduceByKey
                | Operator::GroupByKey
                | Operator::AggregateByKey
                | Operator::Join
                | Operator::Distinct
        )
    }
}

/// One stage of a job: a set of identical tasks, one per partition.
///
/// All byte quantities are stage totals in MB; the engine divides them
/// across tasks. A stage may combine any of: a DFS read, a shuffle input,
/// CPU work, a shuffle output (spilled to local disk and served to the
/// next stage), and a DFS output write.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage name for reports.
    pub name: String,
    /// The operators this stage executes (classification + documentation).
    pub ops: Vec<Operator>,
    /// DFS input volume in MB (0 = no storage read).
    pub read_mb: f64,
    /// Shuffle input volume in MB (0 = no shuffle read).
    pub shuffle_in_mb: f64,
    /// Shuffle output volume in MB (spilled locally, fetched next stage).
    pub shuffle_out_mb: f64,
    /// DFS output volume in MB (0 = no storage write).
    pub output_mb: f64,
    /// CPU cost in cpu-seconds per MB of input processed.
    pub cpu_per_mb: f64,
    /// Fixed CPU cost per task in cpu-seconds (deserialisation, JIT, ...).
    pub base_cpu_per_task: f64,
    /// Overrides the engine's computed task count when set.
    pub tasks: Option<usize>,
}

impl StageSpec {
    fn empty(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ops: Vec::new(),
            read_mb: 0.0,
            shuffle_in_mb: 0.0,
            shuffle_out_mb: 0.0,
            output_mb: 0.0,
            cpu_per_mb: 0.001,
            base_cpu_per_task: 0.05,
            tasks: None,
        }
    }

    /// A stage that ingests `read_mb` MB from the DFS (`textFile`).
    pub fn read(name: &str, read_mb: f64) -> Self {
        let mut s = Self::empty(name);
        s.read_mb = read_mb;
        s.ops.push(Operator::TextFile);
        s
    }

    /// A stage that consumes `shuffle_in_mb` MB of shuffled data.
    pub fn shuffle(name: &str, shuffle_in_mb: f64) -> Self {
        let mut s = Self::empty(name);
        s.shuffle_in_mb = shuffle_in_mb;
        s
    }

    /// A pure compute stage over cached data.
    pub fn compute(name: &str) -> Self {
        let mut s = Self::empty(name);
        s.ops.push(Operator::MapPartitions);
        s
    }

    /// Adds a shuffle output of `mb` MB (marks the map side of a shuffle).
    pub fn shuffle_out(mut self, mb: f64) -> Self {
        self.shuffle_out_mb = mb;
        self
    }

    /// Adds a DFS output of `mb` MB (`saveAsTextFile`).
    pub fn write_output(mut self, mb: f64) -> Self {
        self.output_mb = mb;
        self.ops.push(Operator::SaveAsTextFile);
        self
    }

    /// Adds a DFS output of `mb` MB written through a path the RDD-level
    /// tagger does not see (e.g. Hive's `InsertIntoHiveTable`), so the
    /// stage is *not* structurally marked I/O — the reason the static
    /// solution cannot tune the write stages of the SQL workloads
    /// (Figure 4) while the dynamic solution can (Figure 8c/8d).
    pub fn hive_output(mut self, mb: f64) -> Self {
        self.output_mb = mb;
        self
    }

    /// Adds `mb` MB of local disk reads for cached partitions spilled from
    /// memory (`StorageLevel.MEMORY_AND_DISK`). Like shuffle spill, this
    /// I/O is invisible to the structural tagger (limitation L2: "any
    /// stage could use the disk for spilling the cached data in memory"),
    /// and it interleaves reads with the stage's shuffle writes on the
    /// platter.
    pub fn cache_spill_read(mut self, mb: f64) -> Self {
        self.read_mb = mb;
        self
    }

    /// Sets the CPU cost per MB processed.
    pub fn cpu_per_mb(mut self, cost: f64) -> Self {
        self.cpu_per_mb = cost;
        self
    }

    /// Sets the fixed per-task CPU cost.
    pub fn base_cpu_per_task(mut self, cost: f64) -> Self {
        self.base_cpu_per_task = cost;
        self
    }

    /// Appends an operator (for classification/documentation).
    pub fn op(mut self, op: Operator) -> Self {
        self.ops.push(op);
        self
    }

    /// Overrides the task count.
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Structural classification, as the static solution sees it (§4):
    /// I/O iff an operator explicitly reads or writes storage. Shuffle
    /// traffic does *not* count — that is limitation L2.
    pub fn kind(&self) -> StageKind {
        if self
            .ops
            .iter()
            .any(|op| op.reads_storage() || op.writes_storage())
        {
            StageKind::Io
        } else {
            StageKind::Generic
        }
    }

    /// The [`StageInfo`] handed to thread policies.
    pub fn info(&self, stage_id: usize) -> StageInfo {
        StageInfo {
            stage_id,
            kind: self.kind(),
        }
    }

    /// Input MB processed by this stage (drives CPU cost).
    pub fn processed_mb(&self) -> f64 {
        let input = self.read_mb + self.shuffle_in_mb;
        if input > 0.0 {
            input
        } else {
            self.output_mb.max(self.shuffle_out_mb)
        }
    }

    /// Validates the stage.
    ///
    /// # Panics
    ///
    /// Panics if any volume is negative/NaN, costs are negative, or the
    /// stage does no work at all.
    pub fn validate(&self) {
        for (label, v) in [
            ("read_mb", self.read_mb),
            ("shuffle_in_mb", self.shuffle_in_mb),
            ("shuffle_out_mb", self.shuffle_out_mb),
            ("output_mb", self.output_mb),
            ("cpu_per_mb", self.cpu_per_mb),
            ("base_cpu_per_task", self.base_cpu_per_task),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "stage {:?}: {label} must be finite and non-negative, got {v}",
                self.name
            );
        }
        assert!(
            self.processed_mb() > 0.0 || self.base_cpu_per_task > 0.0,
            "stage {:?} does no work",
            self.name
        );
        if let Some(tasks) = self.tasks {
            assert!(tasks > 0, "stage {:?}: task count must be > 0", self.name);
        }
    }
}

/// A job: an ordered pipeline of stages. Stage `i + 1`'s shuffle input is
/// served from stage `i`'s shuffle output.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name for reports.
    pub name: String,
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Starts building a job.
    pub fn builder(name: &str) -> JobSpecBuilder {
        JobSpecBuilder {
            name: name.to_owned(),
            stages: Vec::new(),
        }
    }

    /// Total DFS input volume across stages, in MB.
    pub fn total_input_mb(&self) -> f64 {
        self.stages.iter().map(|s| s.read_mb).sum()
    }

    /// Validates all stages and cross-stage consistency.
    ///
    /// # Panics
    ///
    /// Panics if the job has no stages, any stage is invalid, or a stage
    /// consumes shuffle input without the previous stage producing any.
    pub fn validate(&self) {
        assert!(!self.stages.is_empty(), "job {:?} has no stages", self.name);
        for stage in &self.stages {
            stage.validate();
        }
        for i in 0..self.stages.len() {
            if self.stages[i].shuffle_in_mb > 0.0 {
                assert!(
                    i > 0 && self.stages[i - 1].shuffle_out_mb > 0.0,
                    "stage {} consumes shuffle input but stage {} produced none",
                    i,
                    i.wrapping_sub(1)
                );
            }
        }
    }
}

/// Builder for [`JobSpec`].
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    name: String,
    stages: Vec<StageSpec>,
}

impl JobSpecBuilder {
    /// Appends a stage.
    pub fn stage(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Finalises and validates the job.
    ///
    /// # Panics
    ///
    /// Panics if the job fails [`JobSpec::validate`].
    pub fn build(self) -> JobSpec {
        let job = JobSpec {
            name: self.name,
            stages: self.stages,
        };
        job.validate();
        job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_stage_is_io() {
        let s = StageSpec::read("ingest", 1024.0);
        assert_eq!(s.kind(), StageKind::Io);
    }

    #[test]
    fn shuffle_stage_is_generic_even_though_it_spills() {
        // Limitation L2: shuffle stages hit the disk but are not marked I/O.
        let s = StageSpec::shuffle("reduce", 1024.0).shuffle_out(512.0);
        assert_eq!(s.kind(), StageKind::Generic);
    }

    #[test]
    fn write_marks_io() {
        let s = StageSpec::shuffle("final", 512.0).write_output(512.0);
        assert_eq!(s.kind(), StageKind::Io);
    }

    #[test]
    fn processed_mb_prefers_inputs() {
        let s = StageSpec::read("r", 100.0);
        assert_eq!(s.processed_mb(), 100.0);
        let w = StageSpec::compute("gen").write_output(300.0);
        assert_eq!(w.processed_mb(), 300.0);
    }

    #[test]
    fn job_builder_validates_shuffle_chain() {
        let job = JobSpec::builder("terasort")
            .stage(StageSpec::read("sample", 1024.0))
            .stage(StageSpec::read("map", 1024.0).shuffle_out(1024.0))
            .stage(StageSpec::shuffle("reduce", 1024.0).write_output(1024.0))
            .build();
        assert_eq!(job.stages.len(), 3);
        assert_eq!(job.total_input_mb(), 2048.0);
    }

    #[test]
    #[should_panic(expected = "produced none")]
    fn dangling_shuffle_input_rejected() {
        let _ = JobSpec::builder("bad")
            .stage(StageSpec::read("r", 10.0))
            .stage(StageSpec::shuffle("s", 10.0))
            .build();
    }

    #[test]
    #[should_panic(expected = "no stages")]
    fn empty_job_rejected() {
        let _ = JobSpec::builder("empty").build();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_volume_rejected() {
        let mut s = StageSpec::read("r", 10.0);
        s.read_mb = -1.0;
        s.validate();
    }

    #[test]
    fn operator_classification() {
        assert!(Operator::TextFile.reads_storage());
        assert!(Operator::SaveAsTextFile.writes_storage());
        assert!(Operator::SaveAsHadoopFile.writes_storage());
        assert!(Operator::ReduceByKey.shuffles());
        assert!(!Operator::Map.shuffles());
        assert!(!Operator::Map.reads_storage());
    }

    #[test]
    fn stage_info_carries_id_and_kind() {
        let s = StageSpec::read("r", 10.0);
        let info = s.info(3);
        assert_eq!(info.stage_id, 3);
        assert_eq!(info.kind, StageKind::Io);
    }
}
