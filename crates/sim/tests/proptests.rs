//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use sae_sim::{CapacityCurve, Kernel, Occurrence, SimTime};

proptest! {
    /// Work conservation: every unit of work put into a processor-sharing
    /// resource is eventually served, and the usage accounting agrees.
    #[test]
    fn work_is_conserved(works in prop::collection::vec(0.1f64..50.0, 1..40)) {
        let mut kernel: Kernel<usize> = Kernel::new();
        let r = kernel.add_resource(CapacityCurve::constant(10.0));
        let total: f64 = works.iter().sum();
        for (i, &w) in works.iter().enumerate() {
            kernel.start_flow(r, 0, w, i);
        }
        let mut completed = 0;
        while let Some(occ) = kernel.next() {
            if matches!(occ, Occurrence::FlowCompleted { .. }) {
                completed += 1;
            }
        }
        prop_assert_eq!(completed, works.len());
        let usage = kernel.usage(r);
        prop_assert!((usage.work_done - total).abs() < 1e-6 * total.max(1.0));
    }

    /// Occurrence times are non-decreasing regardless of the flow mix.
    #[test]
    fn event_times_are_monotone(
        works in prop::collection::vec(0.0f64..20.0, 1..30),
        timer_offsets in prop::collection::vec(0.0f64..10.0, 0..10),
    ) {
        let mut kernel: Kernel<usize> = Kernel::new();
        let r = kernel.add_resource(CapacityCurve::table(vec![5.0, 8.0, 9.0, 9.5]));
        for (i, &w) in works.iter().enumerate() {
            kernel.start_flow(r, (i % 3) as u8, w, i);
        }
        for (i, &t) in timer_offsets.iter().enumerate() {
            kernel.schedule_timer(SimTime::from_seconds(t), 1000 + i);
        }
        let mut last = 0.0;
        while let Some(occ) = kernel.next() {
            let at = match occ {
                Occurrence::FlowCompleted { at, .. } | Occurrence::TimerFired { at, .. } => at,
            };
            prop_assert!(at.seconds() >= last - 1e-12);
            last = at.seconds();
        }
    }

    /// Busy time never exceeds the makespan, and flow-seconds never exceed
    /// `n * makespan`.
    #[test]
    fn usage_bounds(works in prop::collection::vec(0.5f64..10.0, 1..20)) {
        let mut kernel: Kernel<usize> = Kernel::new();
        let r = kernel.add_resource(CapacityCurve::constant(3.0).with_per_flow_cap(1.0));
        let n = works.len();
        for (i, &w) in works.iter().enumerate() {
            kernel.start_flow(r, 0, w, i);
        }
        kernel.run_to_idle();
        let makespan = kernel.now().seconds();
        let usage = kernel.usage(r);
        prop_assert!(usage.busy_seconds <= makespan + 1e-9);
        prop_assert!(usage.flow_seconds <= n as f64 * makespan + 1e-9);
    }

    /// Cancelling a random subset of flows still drains the kernel, and
    /// only the surviving flows complete.
    #[test]
    fn cancellation_is_consistent(
        works in prop::collection::vec(1.0f64..10.0, 2..20),
        cancel_mask in prop::collection::vec(any::<bool>(), 2..20),
    ) {
        let mut kernel: Kernel<usize> = Kernel::new();
        let r = kernel.add_resource(CapacityCurve::constant(4.0));
        let flows: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| kernel.start_flow(r, 0, w, i))
            .collect();
        let mut cancelled = 0;
        for (flow, &cancel) in flows.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel && kernel.cancel_flow(r, *flow).is_some() {
                cancelled += 1;
            }
        }
        let mut completed = 0;
        while kernel.next().is_some() {
            completed += 1;
        }
        prop_assert_eq!(completed + cancelled, works.len());
    }

    /// The per-flow cap is respected: a lone flow of work `w` on a capped
    /// resource takes at least `w / cap` seconds.
    #[test]
    fn per_flow_cap_lower_bounds_latency(work in 1.0f64..100.0, cap in 0.5f64..5.0) {
        let mut kernel: Kernel<u32> = Kernel::new();
        let r = kernel.add_resource(CapacityCurve::constant(1000.0).with_per_flow_cap(cap));
        kernel.start_flow(r, 0, work, 0);
        kernel.run_to_idle();
        prop_assert!(kernel.now().seconds() >= work / cap - 1e-9);
    }
}
