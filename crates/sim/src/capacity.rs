//! Concurrency-dependent capacity curves for processor-sharing resources.

/// Maximum number of distinguishable flow classes on a resource.
///
/// Classes let a capacity curve react to the *mix* of traffic (e.g. a disk
/// that slows down when reads and writes interleave). The storage layer uses
/// class 0 for reads, 1 for writes, 2 for shuffle-serving reads.
pub const MAX_FLOW_CLASSES: usize = 4;

/// The number of active flows on a resource, broken down by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    counts: [usize; MAX_FLOW_CLASSES],
}

impl ClassCounts {
    /// Creates an empty count set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total flows across all classes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Flows of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= MAX_FLOW_CLASSES`.
    pub fn of(&self, class: u8) -> usize {
        self.counts[class as usize]
    }

    /// Number of classes with at least one active flow.
    pub fn distinct_classes(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    pub(crate) fn add(&mut self, class: u8) {
        self.counts[class as usize] += 1;
    }

    pub(crate) fn remove(&mut self, class: u8) {
        debug_assert!(self.counts[class as usize] > 0);
        self.counts[class as usize] -= 1;
    }
}

/// How a resource's aggregate capacity responds to concurrency.
///
/// The curve maps the active [`ClassCounts`] to an aggregate service rate in
/// work units per second. The kernel divides that rate equally among active
/// flows (subject to the optional per-flow cap), which models
/// processor-sharing service (CFQ-style disk scheduling, fair CPU
/// timesharing, per-connection TCP fairness).
///
/// # Examples
///
/// ```
/// use sae_sim::{CapacityCurve, ClassCounts};
///
/// // A 16-core CPU: aggregate capacity 16 core-seconds/s, but one flow
/// // (thread) can never use more than 1 core.
/// let cpu = CapacityCurve::constant(16.0).with_per_flow_cap(1.0);
/// assert_eq!(cpu.per_flow_cap(), 1.0);
/// ```
#[derive(Clone)]
pub struct CapacityCurve {
    kind: CurveKind,
    per_flow_cap: f64,
}

impl std::fmt::Debug for CapacityCurve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            CurveKind::Constant(c) => format!("Constant({c})"),
            CurveKind::Table(t) => format!("Table({} entries)", t.len()),
            CurveKind::Fn(_) => "Fn(..)".to_owned(),
        };
        f.debug_struct("CapacityCurve")
            .field("kind", &kind)
            .field("per_flow_cap", &self.per_flow_cap)
            .finish()
    }
}

#[derive(Clone)]
enum CurveKind {
    /// Capacity independent of concurrency.
    Constant(f64),
    /// A caller-provided table: capacity at n = 1, 2, 3, ... flows
    /// (last entry repeats for larger n). Entry for n = 0 is implicit 0.
    Table(Vec<f64>),
    /// Capacity computed by an arbitrary function of the class mix.
    Fn(std::sync::Arc<dyn Fn(&ClassCounts) -> f64 + Send + Sync>),
}

impl CapacityCurve {
    /// A resource whose aggregate capacity never varies with concurrency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn constant(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be finite and positive, got {capacity}"
        );
        Self {
            kind: CurveKind::Constant(capacity),
            per_flow_cap: f64::INFINITY,
        }
    }

    /// A resource whose capacity is looked up by flow count.
    ///
    /// `table[i]` is the aggregate capacity with `i + 1` active flows; the
    /// final entry is used for any higher concurrency.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or contains a non-positive/non-finite
    /// entry.
    pub fn table(table: Vec<f64>) -> Self {
        assert!(!table.is_empty(), "capacity table must not be empty");
        for &c in &table {
            assert!(
                c.is_finite() && c > 0.0,
                "capacity table entries must be finite and positive, got {c}"
            );
        }
        Self {
            kind: CurveKind::Table(table),
            per_flow_cap: f64::INFINITY,
        }
    }

    /// A resource whose capacity is an arbitrary function of the class mix.
    ///
    /// The function must return a finite, strictly positive value whenever
    /// at least one flow is active; the kernel asserts this.
    pub fn from_fn(f: impl Fn(&ClassCounts) -> f64 + Send + Sync + 'static) -> Self {
        Self {
            kind: CurveKind::Fn(std::sync::Arc::new(f)),
            per_flow_cap: f64::INFINITY,
        }
    }

    /// Limits how much of the aggregate capacity a single flow may consume
    /// (e.g. one thread ≤ one CPU core).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive.
    pub fn with_per_flow_cap(mut self, cap: f64) -> Self {
        assert!(cap > 0.0, "per-flow cap must be positive, got {cap}");
        self.per_flow_cap = cap;
        self
    }

    /// Aggregate capacity for the given class mix.
    pub fn aggregate(&self, counts: &ClassCounts) -> f64 {
        let n = counts.total();
        if n == 0 {
            return 0.0;
        }
        match &self.kind {
            CurveKind::Constant(c) => *c,
            CurveKind::Table(t) => t[(n - 1).min(t.len() - 1)],
            CurveKind::Fn(f) => f(counts),
        }
    }

    /// Per-flow service rate for the given class mix (equal sharing, capped).
    pub fn per_flow_rate(&self, counts: &ClassCounts) -> f64 {
        let n = counts.total();
        if n == 0 {
            return 0.0;
        }
        (self.aggregate(counts) / n as f64).min(self.per_flow_cap)
    }

    /// The per-flow cap (`f64::INFINITY` when unlimited).
    pub fn per_flow_cap(&self) -> f64 {
        self.per_flow_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: usize) -> ClassCounts {
        let mut c = ClassCounts::new();
        for _ in 0..n {
            c.add(0);
        }
        c
    }

    #[test]
    fn constant_curve_is_flat() {
        let c = CapacityCurve::constant(10.0);
        assert_eq!(c.aggregate(&counts(1)), 10.0);
        assert_eq!(c.aggregate(&counts(100)), 10.0);
        assert_eq!(c.aggregate(&counts(0)), 0.0);
    }

    #[test]
    fn table_curve_lookup_and_saturation() {
        let c = CapacityCurve::table(vec![4.0, 6.0, 7.0]);
        assert_eq!(c.aggregate(&counts(1)), 4.0);
        assert_eq!(c.aggregate(&counts(2)), 6.0);
        assert_eq!(c.aggregate(&counts(3)), 7.0);
        assert_eq!(c.aggregate(&counts(50)), 7.0);
    }

    #[test]
    fn per_flow_rate_shares_equally() {
        let c = CapacityCurve::constant(10.0);
        assert_eq!(c.per_flow_rate(&counts(4)), 2.5);
    }

    #[test]
    fn per_flow_cap_limits_single_flow() {
        let c = CapacityCurve::constant(16.0).with_per_flow_cap(1.0);
        assert_eq!(c.per_flow_rate(&counts(2)), 1.0); // 8.0 uncapped
        assert_eq!(c.per_flow_rate(&counts(32)), 0.5);
    }

    #[test]
    fn fn_curve_sees_class_mix() {
        let c = CapacityCurve::from_fn(|counts| if counts.of(1) > 0 { 5.0 } else { 10.0 });
        let mut mixed = ClassCounts::new();
        mixed.add(0);
        mixed.add(1);
        assert_eq!(c.aggregate(&mixed), 5.0);
        assert_eq!(c.aggregate(&counts(2)), 10.0);
    }

    #[test]
    fn class_counts_bookkeeping() {
        let mut c = ClassCounts::new();
        c.add(0);
        c.add(0);
        c.add(2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.of(0), 2);
        assert_eq!(c.of(2), 1);
        assert_eq!(c.distinct_classes(), 2);
        c.remove(0);
        assert_eq!(c.of(0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = CapacityCurve::constant(0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_rejected() {
        let _ = CapacityCurve::table(vec![]);
    }
}
