//! The pre-virtual-time processor-sharing kernel, kept as a reference.
//!
//! This is a self-contained copy of the original O(flows)-per-event
//! implementation: [`Resource::advance`](crate::Kernel) used to sweep every
//! active flow's `remaining` on each event, and completions were found by a
//! full scan. It exists solely so that property tests (and the kernel
//! scaling benchmark in `sae-bench`) can assert the optimized
//! cumulative-service implementation in [`crate::Kernel`] reproduces the
//! same completion sequences — including generation-based stale-heap-entry
//! skipping and the `COMPLETION_REL_EPS` completion-grouping semantics.
//!
//! Gated behind `cfg(test)` and the `reference-impl` feature; it never
//! ships on the production path.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::capacity::{CapacityCurve, ClassCounts};
use crate::resource::UsageAccum;
use crate::time::SimTime;

/// Relative tolerance used when deciding that a flow has completed.
/// Identical to the production kernel's value by construction.
const COMPLETION_REL_EPS: f64 = 1e-9;

#[derive(Debug)]
struct Flow<P> {
    class: u8,
    remaining: f64,
    payload: P,
}

struct Resource<P> {
    curve: CapacityCurve,
    flows: BTreeMap<u64, Flow<P>>,
    counts: ClassCounts,
    rate: f64,
    last_update: f64,
    generation: u64,
    usage: UsageAccum,
}

impl<P> Resource<P> {
    fn new(curve: CapacityCurve) -> Self {
        Self {
            curve,
            flows: BTreeMap::new(),
            counts: ClassCounts::new(),
            rate: 0.0,
            last_update: 0.0,
            generation: 0,
            usage: UsageAccum::default(),
        }
    }

    /// Integrates flow progress up to time `now` — the O(flows) sweep the
    /// virtual-time implementation eliminates.
    fn advance(&mut self, now: f64) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            let n = self.flows.len();
            if n > 0 {
                for flow in self.flows.values_mut() {
                    flow.remaining = (flow.remaining - self.rate * dt).max(0.0);
                }
                self.usage.busy_seconds += dt;
                self.usage.work_done += self.rate * dt * n as f64;
                self.usage.flow_seconds += dt * n as f64;
            }
        }
        self.last_update = now;
    }

    fn recompute(&mut self, now: f64) -> Option<f64> {
        self.generation += 1;
        if self.flows.is_empty() {
            self.rate = 0.0;
            return None;
        }
        self.rate = self.curve.per_flow_rate(&self.counts);
        assert!(
            self.rate.is_finite() && self.rate > 0.0,
            "capacity curve produced non-positive per-flow rate {} for {} flows",
            self.rate,
            self.flows.len()
        );
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        Some(now + min_remaining / self.rate)
    }

    fn insert(&mut self, id: u64, class: u8, work: f64, payload: P) {
        self.counts.add(class);
        self.flows.insert(
            id,
            Flow {
                class,
                remaining: work,
                payload,
            },
        );
    }

    fn remove(&mut self, id: u64) -> Option<Flow<P>> {
        let flow = self.flows.remove(&id)?;
        self.counts.remove(flow.class);
        Some(flow)
    }

    fn drain_completed(&mut self) -> Vec<(u64, Flow<P>)> {
        let Some(min) = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |m| m.min(v)))
            })
        else {
            return Vec::new();
        };
        let threshold = min + COMPLETION_REL_EPS * (1.0 + min);
        let ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= threshold)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let flow = self.remove(id).expect("flow id just observed");
                (id, flow)
            })
            .collect()
    }

    fn flow_remaining(&self, id: u64) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// Identifies a resource within a [`ReferenceKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefResourceId(usize);

/// Identifies a flow within a [`ReferenceKernel`]. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefFlowId(u64);

/// Identifies a scheduled timer within a [`ReferenceKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefTimerId(u64);

/// Something that happened in simulated time, returned by
/// [`ReferenceKernel::next`].
#[derive(Debug)]
pub enum RefOccurrence<P> {
    /// A flow finished its work on a resource.
    FlowCompleted {
        /// Resource the flow ran on.
        resource: RefResourceId,
        /// The completed flow.
        flow: RefFlowId,
        /// Caller-supplied payload, returned by value.
        payload: P,
        /// Completion time.
        at: SimTime,
    },
    /// A timer fired.
    TimerFired {
        /// The fired timer.
        timer: RefTimerId,
        /// Caller-supplied payload, returned by value.
        payload: P,
        /// Fire time.
        at: SimTime,
    },
}

#[derive(Debug, PartialEq, Eq)]
enum Action {
    Completion { resource: usize, generation: u64 },
    Timer { timer: u64 },
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The original O(flows)-per-event deterministic fluid simulator, API-equal
/// (modulo id newtypes) to [`crate::Kernel`].
pub struct ReferenceKernel<P> {
    now: SimTime,
    resources: Vec<Resource<P>>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    timers: BTreeMap<u64, P>,
    pending: std::collections::VecDeque<RefOccurrence<P>>,
    next_flow_id: u64,
    next_timer_id: u64,
    seq: u64,
}

impl<P> Default for ReferenceKernel<P> {
    fn default() -> Self {
        Self {
            now: SimTime::ZERO,
            resources: Vec::new(),
            heap: BinaryHeap::new(),
            timers: BTreeMap::new(),
            pending: std::collections::VecDeque::new(),
            next_flow_id: 0,
            next_timer_id: 0,
            seq: 0,
        }
    }
}

impl<P> ReferenceKernel<P> {
    /// Creates an empty kernel at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a new processor-sharing resource governed by `curve`.
    pub fn add_resource(&mut self, curve: CapacityCurve) -> RefResourceId {
        self.resources.push(Resource::new(curve));
        RefResourceId(self.resources.len() - 1)
    }

    fn push_completion(&mut self, rid: usize) {
        let at = self.resources[rid].recompute(self.now.seconds());
        if let Some(at) = at {
            let generation = self.resources[rid].generation;
            self.seq += 1;
            self.heap.push(Reverse(HeapEntry {
                at: SimTime::from_seconds(at.max(self.now.seconds())),
                seq: self.seq,
                action: Action::Completion {
                    resource: rid,
                    generation,
                },
            }));
        }
    }

    /// Starts a flow of `work` units on `resource` in class `class`.
    pub fn start_flow(
        &mut self,
        resource: RefResourceId,
        class: u8,
        work: f64,
        payload: P,
    ) -> RefFlowId {
        assert!(
            work.is_finite() && work >= 0.0,
            "flow work must be finite and non-negative, got {work}"
        );
        let rid = resource.0;
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        let now = self.now.seconds();
        self.resources[rid].advance(now);
        self.resources[rid].insert(id, class, work, payload);
        self.push_completion(rid);
        RefFlowId(id)
    }

    /// Cancels an in-flight flow, returning its payload if it was active.
    pub fn cancel_flow(&mut self, resource: RefResourceId, flow: RefFlowId) -> Option<P> {
        let rid = resource.0;
        let now = self.now.seconds();
        self.resources[rid].advance(now);
        let removed = self.resources[rid].remove(flow.0);
        self.push_completion(rid);
        removed.map(|f| f.payload)
    }

    /// Remaining work of a flow, or `None` if it is no longer active.
    pub fn flow_remaining(&mut self, resource: RefResourceId, flow: RefFlowId) -> Option<f64> {
        let now = self.now.seconds();
        self.resources[resource.0].advance(now);
        self.resources[resource.0].flow_remaining(flow.0)
    }

    /// Cumulative usage accounting for `resource`, up to the current time.
    pub fn usage(&mut self, resource: RefResourceId) -> UsageAccum {
        let now = self.now.seconds();
        self.resources[resource.0].advance(now);
        self.resources[resource.0].usage
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, payload: P) -> RefTimerId {
        assert!(at >= self.now, "cannot schedule a timer in the past");
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.timers.insert(id, payload);
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            action: Action::Timer { timer: id },
        }));
        RefTimerId(id)
    }

    /// Returns `true` if no flows are active and no timers are pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.timers.is_empty()
            && self.resources.iter().all(|r| r.is_empty())
    }

    /// Advances the simulation to the next occurrence and returns it.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<RefOccurrence<P>> {
        loop {
            if let Some(occ) = self.pending.pop_front() {
                return Some(occ);
            }
            let Reverse(entry) = self.heap.pop()?;
            match entry.action {
                Action::Timer { timer } => {
                    let Some(payload) = self.timers.remove(&timer) else {
                        continue; // cancelled
                    };
                    self.now = entry.at;
                    self.pending.push_back(RefOccurrence::TimerFired {
                        timer: RefTimerId(timer),
                        payload,
                        at: self.now,
                    });
                }
                Action::Completion {
                    resource,
                    generation,
                } => {
                    if self.resources[resource].generation != generation {
                        continue; // stale: population changed since scheduling
                    }
                    self.now = entry.at;
                    let at = self.now;
                    let completed = {
                        let res = &mut self.resources[resource];
                        res.advance(at.seconds());
                        res.drain_completed()
                    };
                    debug_assert!(
                        !completed.is_empty(),
                        "valid completion event must complete at least one flow"
                    );
                    self.push_completion(resource);
                    for (id, flow) in completed {
                        self.pending.push_back(RefOccurrence::FlowCompleted {
                            resource: RefResourceId(resource),
                            flow: RefFlowId(id),
                            payload: flow.payload,
                            at,
                        });
                    }
                }
            }
        }
    }

    /// Runs the simulation to completion, discarding occurrences.
    pub fn run_to_idle(&mut self) {
        while self.next().is_some() {}
    }
}

#[cfg(test)]
mod equivalence {
    //! Lockstep equivalence: the virtual-time kernel and this reference
    //! implementation must produce identical occurrence sequences (same
    //! payloads in the same order, times agreeing to within
    //! `COMPLETION_REL_EPS`) and matching usage integrals, under arbitrary
    //! interleavings of starts, cancellations, timers, and queries.

    use super::*;
    use crate::{CapacityCurve, Kernel, Occurrence};
    use proptest::prelude::*;

    /// One scripted action, applied after the n-th delivered occurrence.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Start a flow of `work` in `class` on resource `res % resources`.
        Start { res: usize, class: u8, work: f64 },
        /// Cancel the `n % live`-th oldest live flow (stale-entry fodder).
        Cancel { n: usize },
        /// Schedule a timer `dt` from now.
        Timer { dt: f64 },
    }

    fn decode(ops: &[(u8, usize, f64)]) -> Vec<Op> {
        ops.iter()
            .map(|&(code, n, x)| match code % 4 {
                0 | 3 => Op::Start {
                    res: n,
                    class: (n % 3) as u8,
                    work: x,
                },
                1 => Op::Cancel { n },
                _ => Op::Timer { dt: x },
            })
            .collect()
    }

    fn curves(selector: usize) -> Vec<CapacityCurve> {
        match selector % 3 {
            0 => vec![CapacityCurve::constant(10.0)],
            1 => vec![
                CapacityCurve::table(vec![5.0, 8.0, 9.0, 9.5]),
                CapacityCurve::constant(3.0).with_per_flow_cap(1.0),
            ],
            _ => vec![
                CapacityCurve::constant(16.0).with_per_flow_cap(1.0),
                CapacityCurve::table(vec![4.0, 6.0, 7.0]),
                CapacityCurve::constant(100.0),
            ],
        }
    }

    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= COMPLETION_REL_EPS * (1.0 + a.abs().max(b.abs()))
    }

    /// Drives both kernels through the same script and asserts lockstep
    /// equivalence of the full occurrence sequence plus final usage.
    fn run_lockstep(
        curve_sel: usize,
        initial: &[(usize, u8, f64)],
        ops: &[Op],
    ) -> Result<(), TestCaseError> {
        let curves = curves(curve_sel);
        let mut new_k: Kernel<usize> = Kernel::new();
        let mut old_k: ReferenceKernel<usize> = ReferenceKernel::new();
        let new_res: Vec<_> = curves
            .iter()
            .map(|c| new_k.add_resource(c.clone()))
            .collect();
        let old_res: Vec<_> = curves
            .iter()
            .map(|c| old_k.add_resource(c.clone()))
            .collect();

        // Live flows in start order: (payload, resource index, handles).
        let mut live: Vec<(usize, usize, crate::FlowId, RefFlowId)> = Vec::new();
        let mut payload = 0usize;
        let start = |new_k: &mut Kernel<usize>,
                     old_k: &mut ReferenceKernel<usize>,
                     live: &mut Vec<(usize, usize, crate::FlowId, RefFlowId)>,
                     payload: &mut usize,
                     res: usize,
                     class: u8,
                     work: f64| {
            let r = res % curves.len();
            let p = *payload;
            *payload += 1;
            let nf = new_k.start_flow(new_res[r], class, work, p);
            let of = old_k.start_flow(old_res[r], class, work, p);
            live.push((p, r, nf, of));
        };

        for &(res, class, work) in initial {
            start(
                &mut new_k,
                &mut old_k,
                &mut live,
                &mut payload,
                res,
                class,
                work,
            );
        }

        let mut op_iter = ops.iter().copied();
        loop {
            let (new_occ, old_occ) = (new_k.next(), old_k.next());
            match (new_occ, old_occ) {
                (None, None) => break,
                (Some(n), Some(o)) => {
                    let (n_at, o_at) = match (&n, &o) {
                        (
                            Occurrence::FlowCompleted {
                                payload: np,
                                at: na,
                                ..
                            },
                            RefOccurrence::FlowCompleted {
                                payload: op,
                                at: oa,
                                ..
                            },
                        ) => {
                            prop_assert_eq!(np, op, "completion order diverged");
                            live.retain(|(p, ..)| p != np);
                            (*na, *oa)
                        }
                        (
                            Occurrence::TimerFired {
                                payload: np,
                                at: na,
                                ..
                            },
                            RefOccurrence::TimerFired {
                                payload: op,
                                at: oa,
                                ..
                            },
                        ) => {
                            prop_assert_eq!(np, op, "timer order diverged");
                            (*na, *oa)
                        }
                        _ => return Err(TestCaseError::fail("occurrence kinds diverged")),
                    };
                    prop_assert!(
                        rel_close(n_at.seconds(), o_at.seconds()),
                        "times diverged: {} vs {}",
                        n_at.seconds(),
                        o_at.seconds()
                    );
                }
                _ => return Err(TestCaseError::fail("one kernel finished early")),
            }
            // Exercise the query-driven `advance` paths (the rounding-
            // sensitive part of virtual-time accounting) on every event.
            for r in 0..curves.len() {
                let nu = new_k.usage(new_res[r]);
                let ou = old_k.usage(old_res[r]);
                prop_assert!(rel_close(nu.busy_seconds, ou.busy_seconds));
                prop_assert!(rel_close(nu.work_done, ou.work_done));
                prop_assert!(rel_close(nu.flow_seconds, ou.flow_seconds));
            }
            match op_iter.next() {
                Some(Op::Start { res, class, work }) => {
                    start(
                        &mut new_k,
                        &mut old_k,
                        &mut live,
                        &mut payload,
                        res,
                        class,
                        work,
                    );
                }
                Some(Op::Cancel { n }) if !live.is_empty() => {
                    let (p, r, nf, of) = live.remove(n % live.len());
                    let nc = new_k.cancel_flow(new_res[r], nf);
                    let oc = old_k.cancel_flow(old_res[r], of);
                    prop_assert_eq!(nc, oc, "cancel of {} diverged", p);
                    // Remaining-work queries must agree too.
                    for &(q, qr, qnf, qof) in &live {
                        let nr = new_k.flow_remaining(new_res[qr], qnf);
                        let or = old_k.flow_remaining(old_res[qr], qof);
                        match (nr, or) {
                            (Some(a), Some(b)) => prop_assert!(
                                rel_close(a, b),
                                "remaining of {} diverged: {} vs {}",
                                q,
                                a,
                                b
                            ),
                            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
                        }
                    }
                }
                Some(Op::Timer { dt }) => {
                    let at = new_k.now() + crate::SimTime::from_seconds(dt);
                    let p = payload;
                    payload += 1;
                    new_k.schedule_timer(at, p);
                    old_k.schedule_timer(at, p);
                }
                // Cancel with nothing live is a no-op; ops exhausted too.
                Some(Op::Cancel { .. }) | None => {}
            }
        }
        prop_assert!(new_k.is_idle());
        prop_assert!(old_k.is_idle());
        Ok(())
    }

    proptest! {
        /// Random scripts of starts/cancels/timers over one to three
        /// resources with mixed capacity curves produce identical
        /// occurrence sequences in both kernels.
        #[test]
        fn completion_sequences_match(
            curve_sel in 0usize..3,
            initial in prop::collection::vec((0usize..3, 0u8..3, 0.0f64..50.0), 1..25),
            raw_ops in prop::collection::vec((any::<u8>(), 0usize..64, 0.05f64..20.0), 0..40),
        ) {
            run_lockstep(curve_sel, &initial, &decode(&raw_ops))?;
        }

        /// Heavy-churn variant: every delivered event triggers an op, so
        /// the intra-resource heap accumulates many stale entries and the
        /// kernel heap many stale generations.
        #[test]
        fn stale_entry_skipping_matches(
            initial in prop::collection::vec((0usize..3, 0u8..3, 0.5f64..10.0), 5..30),
            raw_ops in prop::collection::vec((0u8..2, 0usize..64, 0.5f64..10.0), 20..60),
        ) {
            run_lockstep(2, &initial, &decode(&raw_ops))?;
        }
    }

    /// Simultaneous completions (identical works) group under the same
    /// `COMPLETION_REL_EPS` threshold in both implementations and are
    /// delivered in the same flow-id order.
    #[test]
    fn simultaneous_completion_grouping_matches() {
        let mut new_k: Kernel<usize> = Kernel::new();
        let mut old_k: ReferenceKernel<usize> = ReferenceKernel::new();
        let nr = new_k.add_resource(CapacityCurve::constant(10.0));
        let or = old_k.add_resource(CapacityCurve::constant(10.0));
        for p in 0..6 {
            // Three pairs of identical works: each pair completes together.
            let work = 10.0 * (1 + p / 2) as f64;
            new_k.start_flow(nr, 0, work, p);
            old_k.start_flow(or, 0, work, p);
        }
        let mut new_seq = Vec::new();
        while let Some(Occurrence::FlowCompleted { payload, at, .. }) = new_k.next() {
            new_seq.push((payload, at.seconds()));
        }
        let mut old_seq = Vec::new();
        while let Some(RefOccurrence::FlowCompleted { payload, at, .. }) = old_k.next() {
            old_seq.push((payload, at.seconds()));
        }
        assert_eq!(new_seq.len(), 6);
        assert_eq!(
            new_seq.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            old_seq.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        for (&(_, a), &(_, b)) in new_seq.iter().zip(&old_seq) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.max(b)));
        }
    }
}
