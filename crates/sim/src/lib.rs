//! Deterministic discrete-event simulation kernel for the SAE stack.
//!
//! The kernel stands in for the DAS-5 cluster hardware of the paper. Its
//! central abstraction is the *processor-sharing resource* (driven through
//! [`Kernel`]): a device (CPU, disk, NIC) that serves a set of concurrent
//! *flows*, each with a remaining amount of work, where the device's
//! aggregate capacity is a function of how many flows (and of which classes)
//! are active. This is exactly the mechanism the paper exploits — HDD
//! throughput peaks at a small number of concurrent streams and collapses
//! under seek thrash beyond it — expressed as a capacity curve (see
//! `sae-storage`).
//!
//! The kernel is *fluid*: between events every flow progresses at its current
//! rate; events occur when a flow completes, a timer fires, or the caller
//! changes the flow population (which re-computes rates and re-schedules the
//! next completion).
//!
//! Design notes:
//!
//! * **Virtual-time accounting.** Because every flow on a resource is
//!   served at the same per-flow rate, a resource integrates one
//!   cumulative-service counter instead of sweeping all flows per event;
//!   completions come from an intra-resource min-heap of finish credits.
//!   `advance` is O(1), population changes are O(log flows) — see
//!   [`resource`](crate::Kernel) internals and `DESIGN.md` §4. The original
//!   O(flows)-sweep implementation survives in the `reference` module
//!   (test/feature gated) and property tests pin the two to identical
//!   completion orders.
//! * **No callbacks.** [`Kernel::next`] returns [`Occurrence`]s; the caller
//!   (the DAG engine in `sae-dag`) owns all higher-level state machines.
//!   This sidesteps shared-mutability issues and keeps the kernel tiny and
//!   testable.
//! * **Deterministic.** Ties are broken by a monotone sequence number; all
//!   randomness lives outside the kernel (seeded, in [`rng`]).
//!
//! # Examples
//!
//! ```
//! use sae_sim::{CapacityCurve, Kernel, Occurrence};
//!
//! let mut kernel: Kernel<&'static str> = Kernel::new();
//! // A "disk" with 100 MB/s regardless of concurrency.
//! let disk = kernel.add_resource(CapacityCurve::constant(100.0));
//! kernel.start_flow(disk, 0, 50.0, "first");   // 50 MB
//! kernel.start_flow(disk, 0, 100.0, "second"); // 100 MB
//!
//! // Both flows share the disk: "first" finishes at t = 1.0 s,
//! // "second" gets the full disk afterwards and finishes at t = 1.5 s.
//! match kernel.next().unwrap() {
//!     Occurrence::FlowCompleted { payload, at, .. } => {
//!         assert_eq!(payload, "first");
//!         assert!((at.seconds() - 1.0).abs() < 1e-9);
//!     }
//!     _ => unreachable!(),
//! }
//! match kernel.next().unwrap() {
//!     Occurrence::FlowCompleted { payload, at, .. } => {
//!         assert_eq!(payload, "second");
//!         assert!((at.seconds() - 1.5).abs() < 1e-9);
//!     }
//!     _ => unreachable!(),
//! }
//! assert!(kernel.next().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod kernel;
pub mod rng;
mod time;

pub(crate) mod resource;

#[cfg(any(test, feature = "reference-impl"))]
pub mod reference;

pub use capacity::{CapacityCurve, ClassCounts, MAX_FLOW_CLASSES};
pub use kernel::{FlowId, Kernel, Occurrence, ResourceId, ResourceUsage, TimerId};
pub use time::SimTime;
