//! The event-driven simulation kernel.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::capacity::CapacityCurve;
use crate::resource::Resource;
use crate::time::SimTime;

pub use crate::resource::UsageAccum as ResourceUsage;

/// Identifies a resource within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(usize);

/// Identifies a flow within a [`Kernel`]. Unique across resources and never
/// reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// Identifies a scheduled timer. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// Something that happened in simulated time, returned by [`Kernel::next`].
#[derive(Debug)]
pub enum Occurrence<P> {
    /// A flow finished its work on a resource.
    FlowCompleted {
        /// Resource the flow ran on.
        resource: ResourceId,
        /// The completed flow.
        flow: FlowId,
        /// Caller-supplied payload, returned by value.
        payload: P,
        /// Completion time.
        at: SimTime,
    },
    /// A timer scheduled with [`Kernel::schedule_timer`] fired.
    TimerFired {
        /// The fired timer.
        timer: TimerId,
        /// Caller-supplied payload, returned by value.
        payload: P,
        /// Fire time.
        at: SimTime,
    },
}

#[derive(Debug, PartialEq, Eq)]
enum Action {
    Completion { resource: usize, generation: u64 },
    Timer { timer: u64 },
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic fluid discrete-event simulator.
///
/// `P` is the caller's payload type, attached to flows and timers and handed
/// back inside [`Occurrence`]s. See the [crate docs](crate) for the model and
/// a worked example.
pub struct Kernel<P> {
    now: SimTime,
    resources: Vec<Resource<P>>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    timers: BTreeMap<u64, P>,
    pending: VecDeque<Occurrence<P>>,
    /// Reusable completion-drain buffer: the per-event hot path hands this
    /// to [`Resource::drain_completed_into`] instead of allocating a fresh
    /// `Vec` per completion event.
    completed_scratch: Vec<(u64, P)>,
    next_flow_id: u64,
    next_timer_id: u64,
    seq: u64,
    events_processed: u64,
}

impl<P> Default for Kernel<P> {
    fn default() -> Self {
        Self {
            now: SimTime::ZERO,
            resources: Vec::new(),
            heap: BinaryHeap::new(),
            timers: BTreeMap::new(),
            pending: VecDeque::new(),
            completed_scratch: Vec::new(),
            next_flow_id: 0,
            next_timer_id: 0,
            seq: 0,
            events_processed: 0,
        }
    }
}

impl<P> std::fmt::Debug for Kernel<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("resources", &self.resources.len())
            .field("pending_timers", &self.timers.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P> Kernel<P> {
    /// Creates an empty kernel at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of occurrences delivered so far (for diagnostics/benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Registers a new processor-sharing resource governed by `curve`.
    pub fn add_resource(&mut self, curve: CapacityCurve) -> ResourceId {
        self.resources.push(Resource::new(curve));
        ResourceId(self.resources.len() - 1)
    }

    fn push_completion(&mut self, rid: usize) {
        let at = {
            let res = &mut self.resources[rid];
            res.recompute(self.now.seconds())
        };
        if let Some(at) = at {
            let generation = self.resources[rid].generation;
            self.seq += 1;
            self.heap.push(Reverse(HeapEntry {
                at: SimTime::from_seconds(at.max(self.now.seconds())),
                seq: self.seq,
                action: Action::Completion {
                    resource: rid,
                    generation,
                },
            }));
        }
    }

    /// Starts a flow of `work` units on `resource`, in traffic class
    /// `class`, carrying `payload`.
    ///
    /// Zero-work flows complete at the current time (delivered by the next
    /// [`Kernel::next`] call).
    ///
    /// # Panics
    ///
    /// Panics if `resource` is unknown, `class >= MAX_FLOW_CLASSES`, or
    /// `work` is negative/NaN.
    pub fn start_flow(&mut self, resource: ResourceId, class: u8, work: f64, payload: P) -> FlowId {
        assert!(
            work.is_finite() && work >= 0.0,
            "flow work must be finite and non-negative, got {work}"
        );
        let rid = resource.0;
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        let now = self.now.seconds();
        self.resources[rid].advance(now);
        self.resources[rid].insert(id, class, work, payload);
        self.push_completion(rid);
        FlowId(id)
    }

    /// Cancels an in-flight flow, returning its payload, or `None` if the
    /// flow already completed or never existed.
    pub fn cancel_flow(&mut self, resource: ResourceId, flow: FlowId) -> Option<P> {
        let rid = resource.0;
        let now = self.now.seconds();
        self.resources[rid].advance(now);
        let removed = self.resources[rid].remove(flow.0);
        self.push_completion(rid);
        removed.map(|f| f.payload)
    }

    /// Remaining work of a flow, or `None` if it is no longer active.
    pub fn flow_remaining(&mut self, resource: ResourceId, flow: FlowId) -> Option<f64> {
        let now = self.now.seconds();
        self.resources[resource.0].advance(now);
        self.resources[resource.0].flow_remaining(flow.0)
    }

    /// Number of active flows on `resource`.
    pub fn active_flows(&self, resource: ResourceId) -> usize {
        self.resources[resource.0].active_flows()
    }

    /// Current per-flow service rate on `resource` (0.0 when idle).
    pub fn per_flow_rate(&self, resource: ResourceId) -> f64 {
        self.resources[resource.0].per_flow_rate()
    }

    /// Current class mix of active flows on `resource`.
    pub fn class_counts(&self, resource: ResourceId) -> crate::ClassCounts {
        self.resources[resource.0].class_counts()
    }

    /// Current aggregate service rate on `resource` (0.0 when idle).
    pub fn aggregate_rate(&self, resource: ResourceId) -> f64 {
        let res = &self.resources[resource.0];
        res.per_flow_rate() * res.active_flows() as f64
    }

    /// Cumulative usage accounting for `resource`, up to the current time.
    pub fn usage(&mut self, resource: ResourceId) -> ResourceUsage {
        let now = self.now.seconds();
        self.resources[resource.0].advance(now);
        self.resources[resource.0].usage()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_timer(&mut self, at: SimTime, payload: P) -> TimerId {
        assert!(at >= self.now, "cannot schedule a timer in the past");
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.timers.insert(id, payload);
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            action: Action::Timer { timer: id },
        }));
        TimerId(id)
    }

    /// Schedules `payload` to fire `delay` from now.
    pub fn schedule_after(&mut self, delay: SimTime, payload: P) -> TimerId {
        self.schedule_timer(self.now + delay, payload)
    }

    /// Cancels a pending timer. Returns its payload if it had not fired.
    pub fn cancel_timer(&mut self, timer: TimerId) -> Option<P> {
        self.timers.remove(&timer.0)
    }

    /// Returns `true` if no flows are active and no timers are pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.timers.is_empty()
            && self.resources.iter().all(|r| r.is_empty())
    }

    /// Advances the simulation to the next occurrence and returns it, or
    /// `None` when nothing remains scheduled.
    ///
    /// Multiple flows finishing at the same instant are delivered one per
    /// call, in deterministic (flow-id) order.
    ///
    /// Not an `Iterator`: advancing mutates capacity state, and callers
    /// interleave `next` with `start_flow`/`cancel_flow` between calls.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Occurrence<P>> {
        loop {
            if let Some(occ) = self.pending.pop_front() {
                self.events_processed += 1;
                return Some(occ);
            }
            let Reverse(entry) = self.heap.pop()?;
            match entry.action {
                Action::Timer { timer } => {
                    let Some(payload) = self.timers.remove(&timer) else {
                        continue; // cancelled
                    };
                    self.now = entry.at;
                    self.pending.push_back(Occurrence::TimerFired {
                        timer: TimerId(timer),
                        payload,
                        at: self.now,
                    });
                }
                Action::Completion {
                    resource,
                    generation,
                } => {
                    if self.resources[resource].generation != generation {
                        continue; // stale: population changed since scheduling
                    }
                    self.now = entry.at;
                    let at = self.now;
                    {
                        let res = &mut self.resources[resource];
                        res.advance(at.seconds());
                        res.drain_completed_into(&mut self.completed_scratch);
                    }
                    debug_assert!(
                        !self.completed_scratch.is_empty(),
                        "valid completion event must complete at least one flow"
                    );
                    self.push_completion(resource);
                    for (id, payload) in self.completed_scratch.drain(..) {
                        self.pending.push_back(Occurrence::FlowCompleted {
                            resource: ResourceId(resource),
                            flow: FlowId(id),
                            payload,
                            at,
                        });
                    }
                }
            }
        }
    }

    /// Runs the simulation to completion, discarding occurrences. Mostly
    /// useful in tests and benches.
    pub fn run_to_idle(&mut self) {
        while self.next().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapacityCurve;

    fn complete_times(kernel: &mut Kernel<u32>) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        while let Some(occ) = kernel.next() {
            if let Occurrence::FlowCompleted { payload, at, .. } = occ {
                out.push((payload, at.seconds()));
            }
        }
        out
    }

    #[test]
    fn single_flow_completes_at_work_over_rate() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        k.start_flow(r, 0, 25.0, 1);
        let done = complete_times(&mut k);
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn processor_sharing_two_flows() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(100.0));
        k.start_flow(r, 0, 50.0, 1);
        k.start_flow(r, 0, 100.0, 2);
        let done = complete_times(&mut k);
        assert_eq!(done[0].0, 1);
        assert!((done[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(done[1].0, 2);
        assert!((done[1].1 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn per_flow_cap_prevents_speedup_when_alone() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(16.0).with_per_flow_cap(1.0));
        k.start_flow(r, 0, 4.0, 1);
        let done = complete_times(&mut k);
        assert!((done[0].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_completions_delivered_in_flow_order() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        k.start_flow(r, 0, 10.0, 7);
        k.start_flow(r, 0, 10.0, 8);
        let done = complete_times(&mut k);
        assert_eq!(done.iter().map(|d| d.0).collect::<Vec<_>>(), vec![7, 8]);
        assert!((done[0].1 - 2.0).abs() < 1e-9);
        assert!((done[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_flow_completes_immediately() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(1.0));
        k.start_flow(r, 0, 0.0, 5);
        let done = complete_times(&mut k);
        assert_eq!(done, vec![(5, 0.0)]);
    }

    #[test]
    fn cancel_flow_returns_payload_and_reschedules() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        let f1 = k.start_flow(r, 0, 100.0, 1);
        k.start_flow(r, 0, 10.0, 2);
        assert_eq!(k.cancel_flow(r, f1), Some(1));
        // Flow 2 now gets the whole resource: completes at t = 1.0.
        let done = complete_times(&mut k);
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timers_fire_in_order_and_interleave_with_flows() {
        let mut k: Kernel<&'static str> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(1.0));
        k.start_flow(r, 0, 2.0, "flow");
        k.schedule_timer(SimTime::from_seconds(1.0), "timer1");
        k.schedule_timer(SimTime::from_seconds(3.0), "timer2");
        let mut order = Vec::new();
        while let Some(occ) = k.next() {
            match occ {
                Occurrence::FlowCompleted { payload, .. } => order.push(payload),
                Occurrence::TimerFired { payload, .. } => order.push(payload),
            }
        }
        assert_eq!(order, vec!["timer1", "flow", "timer2"]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut k: Kernel<u32> = Kernel::new();
        let t = k.schedule_timer(SimTime::from_seconds(1.0), 9);
        assert_eq!(k.cancel_timer(t), Some(9));
        assert!(k.next().is_none());
    }

    #[test]
    fn adding_flow_midway_slows_existing_flow() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        k.start_flow(r, 0, 20.0, 1);
        k.schedule_timer(SimTime::from_seconds(1.0), 0);
        // At t=1, flow 1 has 10 work left. Start flow 2; both now run at 5/s.
        match k.next().unwrap() {
            Occurrence::TimerFired { .. } => {
                k.start_flow(r, 0, 10.0, 2);
            }
            _ => panic!("expected timer"),
        }
        let done = complete_times(&mut k);
        // Both finish at t = 1 + 10/5 = 3.
        assert_eq!(done.len(), 2);
        assert!((done[0].1 - 3.0).abs() < 1e-9);
        assert!((done[1].1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn usage_accounting_tracks_busy_and_flow_seconds() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        k.start_flow(r, 0, 10.0, 1);
        k.start_flow(r, 0, 10.0, 2);
        k.run_to_idle();
        // Both complete at t=2; busy 2s, flow-seconds 4, work 20.
        let u = k.usage(r);
        assert!((u.busy_seconds - 2.0).abs() < 1e-9);
        assert!((u.flow_seconds - 4.0).abs() < 1e-9);
        assert!((u.work_done - 20.0).abs() < 1e-6);
    }

    #[test]
    fn idle_resource_accumulates_no_usage() {
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::constant(10.0));
        k.schedule_timer(SimTime::from_seconds(5.0), 0);
        k.run_to_idle();
        let u = k.usage(r);
        assert_eq!(u.busy_seconds, 0.0);
        assert_eq!(u.work_done, 0.0);
    }

    #[test]
    fn table_curve_contention_shapes_completion() {
        // 1 flow: 10/s; 2 flows: 8/s aggregate (4 each).
        let mut k: Kernel<u32> = Kernel::new();
        let r = k.add_resource(CapacityCurve::table(vec![10.0, 8.0]));
        k.start_flow(r, 0, 8.0, 1);
        k.start_flow(r, 0, 8.0, 2);
        let done = complete_times(&mut k);
        assert!((done[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn is_idle_reflects_state() {
        let mut k: Kernel<u32> = Kernel::new();
        assert!(k.is_idle());
        let r = k.add_resource(CapacityCurve::constant(1.0));
        k.start_flow(r, 0, 1.0, 1);
        assert!(!k.is_idle());
        k.run_to_idle();
        assert!(k.is_idle());
    }

    #[test]
    fn deterministic_event_stream() {
        let run = || {
            let mut k: Kernel<u32> = Kernel::new();
            let r1 = k.add_resource(CapacityCurve::table(vec![5.0, 8.0, 9.0]));
            let r2 = k.add_resource(CapacityCurve::constant(3.0));
            for i in 0..20 {
                k.start_flow(r1, (i % 2) as u8, 1.0 + i as f64, i);
                k.start_flow(r2, 0, 2.0 + i as f64, 100 + i);
            }
            let mut trace = Vec::new();
            while let Some(occ) = k.next() {
                if let Occurrence::FlowCompleted { payload, at, .. } = occ {
                    trace.push((payload, at.seconds().to_bits()));
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
