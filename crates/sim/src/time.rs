//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// `SimTime` is a thin newtype over `f64` that enforces the two invariants
/// the kernel relies on: values are finite and non-negative. It implements
/// `Ord` (total order), which a bare `f64` cannot.
///
/// # Examples
///
/// ```
/// use sae_sim::SimTime;
///
/// let t = SimTime::from_seconds(1.5) + SimTime::from_seconds(0.5);
/// assert_eq!(t.seconds(), 2.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative, NaN, or infinite.
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Returns the time in seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns zero instead of going negative.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Invariant: never NaN, so partial_cmp always succeeds.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_seconds(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when that is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_seconds(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_seconds(2.0) - SimTime::from_seconds(0.5);
        assert_eq!(t.seconds(), 1.5);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_seconds(3.0),
            SimTime::from_seconds(1.0),
            SimTime::from_seconds(2.0),
        ];
        v.sort();
        assert_eq!(v[0].seconds(), 1.0);
        assert_eq!(v[2].seconds(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = SimTime::from_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::from_seconds(f64::NAN);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_seconds(1.0);
        let b = SimTime::from_seconds(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_seconds(1.5).to_string(), "1.500000s");
    }
}
