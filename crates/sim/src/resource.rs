//! Processor-sharing resource internals.
//!
//! # Virtual-time (cumulative-service) accounting
//!
//! Every active flow on a resource is served at the *same* per-flow rate
//! (equal sharing, optionally capped — see [`CapacityCurve`]). That
//! uniformity makes the classic fluid-simulation trick exact: instead of
//! updating each flow's remaining work on every event (an O(flows) sweep),
//! the resource integrates a single cumulative-service counter
//! `S(t) = ∫ rate(τ) dτ` and stamps each flow at admission with its *finish
//! credit* `S(t₀) + work`. A flow's remaining work at any instant is
//! `credit − S(t)`, and the next completion is simply the smallest credit —
//! kept in an intra-resource min-heap. This turns
//! [`advance`](Resource::advance) into O(1) and insert/remove/completion
//! into O(log flows), an O(n²) → O(n log n) change across a stage that
//! pushes thousands of task attempts through one disk.
//!
//! Removed flows leave *stale* heap entries behind; they are skipped lazily
//! (an entry is live iff its flow id is still in the flow table — ids are
//! never reused). `S` is re-based to zero whenever the resource drains
//! empty, which also empties the heap of stale entries and bounds the
//! cancellation error of `credit − S` to one busy period.
//!
//! The pre-virtual-time implementation is preserved in
//! `crate::reference` (test/feature gated) and property tests assert the
//! two produce identical completion orders with times agreeing to well
//! under [`COMPLETION_REL_EPS`].

use std::collections::{BinaryHeap, HashMap};

use crate::capacity::{CapacityCurve, ClassCounts};

/// Relative tolerance used when deciding that a flow has completed.
pub(crate) const COMPLETION_REL_EPS: f64 = 1e-9;

#[derive(Debug)]
pub(crate) struct Flow<P> {
    pub class: u8,
    /// Finish credit: cumulative service at admission plus the flow's work.
    credit: f64,
    pub payload: P,
}

/// Cumulative usage statistics for one resource. See
/// [`crate::Kernel::usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UsageAccum {
    /// Seconds during which at least one flow was active.
    pub busy_seconds: f64,
    /// Total work units served.
    pub work_done: f64,
    /// Integral of (active flow count) over time, i.e. total flow-seconds.
    /// For a disk this is "thread-seconds spent blocked on I/O".
    pub flow_seconds: f64,
}

/// Min-heap key for a flow: credits are finite and non-negative, so their
/// IEEE-754 bit patterns order exactly like the values and a plain `u64`
/// comparison suffices (ties broken by flow id for determinism).
type HeapKey = std::cmp::Reverse<(u64, u64)>;

pub(crate) struct Resource<P> {
    curve: CapacityCurve,
    flows: HashMap<u64, Flow<P>>,
    /// Flows ordered by finish credit; stale entries (removed flows) are
    /// skipped lazily. Never iterated, so `flows` being a `HashMap` cannot
    /// leak iteration-order nondeterminism.
    queue: BinaryHeap<HeapKey>,
    counts: ClassCounts,
    /// Per-flow service rate under the current population.
    rate: f64,
    last_update: f64,
    /// Cumulative per-flow service `S(t)` since the last empty re-base.
    service: f64,
    /// Bumped on every population change; stale heap entries are skipped.
    pub generation: u64,
    usage: UsageAccum,
}

impl<P> Resource<P> {
    pub fn new(curve: CapacityCurve) -> Self {
        Self {
            curve,
            flows: HashMap::new(),
            queue: BinaryHeap::new(),
            counts: ClassCounts::new(),
            rate: 0.0,
            last_update: 0.0,
            service: 0.0,
            generation: 0,
            usage: UsageAccum::default(),
        }
    }

    /// Integrates flow progress up to time `now` — O(1): only the
    /// cumulative-service counter and the usage integrals move.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            let n = self.flows.len();
            if n > 0 {
                self.service += self.rate * dt;
                self.usage.busy_seconds += dt;
                self.usage.work_done += self.rate * dt * n as f64;
                self.usage.flow_seconds += dt * n as f64;
            }
        }
        self.last_update = now;
    }

    /// Remaining work of the heap's first *live* entry, discarding stale
    /// entries on the way. `None` iff no flow is active.
    fn peek_min_remaining(&mut self) -> Option<f64> {
        while let Some(&std::cmp::Reverse((bits, id))) = self.queue.peek() {
            if self.flows.contains_key(&id) {
                return Some((f64::from_bits(bits) - self.service).max(0.0));
            }
            self.queue.pop();
        }
        None
    }

    /// Recomputes the shared rate after a population change and returns the
    /// absolute time of the next completion (if any flow is active).
    pub fn recompute(&mut self, now: f64) -> Option<f64> {
        self.generation += 1;
        if self.flows.is_empty() {
            self.rate = 0.0;
            // Re-base the service integral each idle period: every heap
            // entry is stale now, and resetting bounds the floating-point
            // cancellation in `credit − S` to one busy period.
            self.service = 0.0;
            self.queue.clear();
            return None;
        }
        self.rate = self.curve.per_flow_rate(&self.counts);
        assert!(
            self.rate.is_finite() && self.rate > 0.0,
            "capacity curve produced non-positive per-flow rate {} for {} flows",
            self.rate,
            self.flows.len()
        );
        let min_remaining = self
            .peek_min_remaining()
            .expect("non-empty resource has a live heap entry");
        Some(now + min_remaining / self.rate)
    }

    pub fn insert(&mut self, id: u64, class: u8, work: f64, payload: P) {
        self.counts.add(class);
        let credit = self.service + work;
        debug_assert!(credit.is_finite() && credit >= 0.0);
        self.queue.push(std::cmp::Reverse((credit.to_bits(), id)));
        self.flows.insert(
            id,
            Flow {
                class,
                credit,
                payload,
            },
        );
    }

    pub fn remove(&mut self, id: u64) -> Option<Flow<P>> {
        // The heap entry stays behind; it is skipped lazily once its id no
        // longer resolves in the flow table.
        let flow = self.flows.remove(&id)?;
        self.counts.remove(flow.class);
        Some(flow)
    }

    /// Removes every flow whose remaining work is (within tolerance) equal
    /// to the minimum — i.e. the flows that just finished — appending them
    /// to `out` in flow-id order. Must be called after `advance` to the
    /// completion time, with an empty `out` buffer (caller-owned so the hot
    /// path allocates nothing per event).
    pub fn drain_completed_into(&mut self, out: &mut Vec<(u64, P)>) {
        debug_assert!(out.is_empty(), "completion buffer must be drained");
        let Some(min) = self.peek_min_remaining() else {
            return;
        };
        let threshold = min + COMPLETION_REL_EPS * (1.0 + min);
        while let Some(&std::cmp::Reverse((bits, id))) = self.queue.peek() {
            let Some(flow) = self.flows.get(&id) else {
                self.queue.pop();
                continue; // stale: flow was cancelled
            };
            debug_assert_eq!(flow.credit.to_bits(), bits);
            if (f64::from_bits(bits) - self.service).max(0.0) <= threshold {
                self.queue.pop();
                let flow = self.remove(id).expect("flow id just observed");
                out.push((id, flow.payload));
            } else {
                break;
            }
        }
        // The heap yields completions in credit order; deliver in flow-id
        // order as the pre-virtual-time implementation did.
        out.sort_unstable_by_key(|&(id, _)| id);
    }

    pub fn flow_remaining(&self, id: u64) -> Option<f64> {
        self.flows
            .get(&id)
            .map(|f| (f.credit - self.service).max(0.0))
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn class_counts(&self) -> ClassCounts {
        self.counts
    }

    pub fn per_flow_rate(&self) -> f64 {
        self.rate
    }

    pub fn usage(&self) -> UsageAccum {
        self.usage
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}
