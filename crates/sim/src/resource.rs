//! Processor-sharing resource internals.

use std::collections::BTreeMap;

use crate::capacity::{CapacityCurve, ClassCounts};

/// Relative tolerance used when deciding that a flow has completed.
const COMPLETION_REL_EPS: f64 = 1e-9;

#[derive(Debug)]
pub(crate) struct Flow<P> {
    pub class: u8,
    pub remaining: f64,
    pub payload: P,
}

/// Cumulative usage statistics for one resource. See
/// [`crate::Kernel::usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UsageAccum {
    /// Seconds during which at least one flow was active.
    pub busy_seconds: f64,
    /// Total work units served.
    pub work_done: f64,
    /// Integral of (active flow count) over time, i.e. total flow-seconds.
    /// For a disk this is "thread-seconds spent blocked on I/O".
    pub flow_seconds: f64,
}

pub(crate) struct Resource<P> {
    curve: CapacityCurve,
    flows: BTreeMap<u64, Flow<P>>,
    counts: ClassCounts,
    /// Per-flow service rate under the current population.
    rate: f64,
    last_update: f64,
    /// Bumped on every population change; stale heap entries are skipped.
    pub generation: u64,
    usage: UsageAccum,
}

impl<P> Resource<P> {
    pub fn new(curve: CapacityCurve) -> Self {
        Self {
            curve,
            flows: BTreeMap::new(),
            counts: ClassCounts::new(),
            rate: 0.0,
            last_update: 0.0,
            generation: 0,
            usage: UsageAccum::default(),
        }
    }

    /// Integrates flow progress up to time `now`.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            let n = self.flows.len();
            if n > 0 {
                for flow in self.flows.values_mut() {
                    flow.remaining = (flow.remaining - self.rate * dt).max(0.0);
                }
                self.usage.busy_seconds += dt;
                self.usage.work_done += self.rate * dt * n as f64;
                self.usage.flow_seconds += dt * n as f64;
            }
        }
        self.last_update = now;
    }

    /// Recomputes the shared rate after a population change and returns the
    /// absolute time of the next completion (if any flow is active).
    pub fn recompute(&mut self, now: f64) -> Option<f64> {
        self.generation += 1;
        if self.flows.is_empty() {
            self.rate = 0.0;
            return None;
        }
        self.rate = self.curve.per_flow_rate(&self.counts);
        assert!(
            self.rate.is_finite() && self.rate > 0.0,
            "capacity curve produced non-positive per-flow rate {} for {} flows",
            self.rate,
            self.flows.len()
        );
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        Some(now + min_remaining / self.rate)
    }

    pub fn insert(&mut self, id: u64, class: u8, work: f64, payload: P) {
        self.counts.add(class);
        self.flows.insert(
            id,
            Flow {
                class,
                remaining: work,
                payload,
            },
        );
    }

    pub fn remove(&mut self, id: u64) -> Option<Flow<P>> {
        let flow = self.flows.remove(&id)?;
        self.counts.remove(flow.class);
        Some(flow)
    }

    /// Removes and returns every flow whose remaining work is (within
    /// tolerance) equal to the minimum — i.e. the flows that just finished.
    /// Must be called after `advance` to the completion time.
    pub fn drain_completed(&mut self) -> Vec<(u64, Flow<P>)> {
        let Some(min) = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |m| m.min(v)))
            })
        else {
            return Vec::new();
        };
        let threshold = min + COMPLETION_REL_EPS * (1.0 + min);
        let ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= threshold)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let flow = self.remove(id).expect("flow id just observed");
                (id, flow)
            })
            .collect()
    }

    pub fn flow_remaining(&self, id: u64) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn class_counts(&self) -> ClassCounts {
        self.counts
    }

    pub fn per_flow_rate(&self) -> f64 {
        self.rate
    }

    pub fn usage(&self) -> UsageAccum {
        self.usage
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}
