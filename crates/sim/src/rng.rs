//! Seeded randomness helpers for deterministic simulations.
//!
//! All stochastic inputs to the simulator (per-node speed variability, data
//! skew) flow through [`DeterministicRng`], so a run is fully reproducible
//! from a single `u64` seed. The normal/lognormal samplers are implemented
//! via Box–Muller to avoid extra dependencies.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random source with the distribution samplers the simulator needs.
///
/// # Examples
///
/// ```
/// use sae_sim::rng::DeterministicRng;
///
/// let mut a = DeterministicRng::seed(42);
/// let mut b = DeterministicRng::seed(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug)]
pub struct DeterministicRng {
    inner: StdRng,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; children with different
    /// `stream` values are decorrelated.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base: u64 = self.inner.random();
        Self::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.inner.random_range(0..n)
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 to keep ln(u) finite.
        let u = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`.
    ///
    /// Used for per-node disk speed variability (Figure 3 of the paper):
    /// most nodes cluster near the median with a heavy slow tail.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential sample with the given rate (`1 / mean`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed(7);
        let mut b = DeterministicRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::seed(1);
        let mut b = DeterministicRng::seed(2);
        assert_ne!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = DeterministicRng::seed(3);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.uniform().to_bits(), c2.uniform().to_bits());
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = DeterministicRng::seed(11);
        for _ in 0..1000 {
            let v = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = DeterministicRng::seed(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DeterministicRng::seed(17);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = DeterministicRng::seed(19);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::seed(23);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn index_covers_range() {
        let mut rng = DeterministicRng::seed(29);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
