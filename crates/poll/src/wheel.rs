//! A coalescing timer wheel.
//!
//! The reactor needs many cheap timers — a heartbeat sweep tick, one
//! deadline per in-flight task, a job deadline — and a single answer to
//! "how long may the poller sleep?". A hashed wheel gives O(1) insert
//! and cancel-by-forgetting: entries carry a [`TimerId`]; cancellation
//! is lazy (the caller ignores ids it no longer cares about when they
//! fire), the same trick the simulator's finish-credit heap uses.
//!
//! The wheel is driven by caller-supplied [`Instant`]s, so it is
//! deterministic under test and never reads the clock itself.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Opaque handle identifying a scheduled timer.
///
/// Ids are unique per wheel for its lifetime and never reused, so a
/// caller can safely treat a stale id as "cancelled".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry {
    due: Instant,
    id: TimerId,
    what: u64,
}

// Min-heap by due time (BinaryHeap is a max-heap, so invert).
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Coalescing timer collection: schedule many timers, sleep until the
/// earliest, pop everything due.
///
/// # Examples
///
/// ```
/// use sae_poll::TimerWheel;
/// use std::time::{Duration, Instant};
///
/// let mut wheel = TimerWheel::new();
/// let now = Instant::now();
/// wheel.schedule_at(now + Duration::from_millis(5), 42);
/// assert!(wheel.next_timeout(now) <= Some(Duration::from_millis(5)));
/// let fired = wheel.expire(now + Duration::from_millis(6));
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].1, 42);
/// ```
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Entry>,
    next_id: u64,
    cancelled: std::collections::HashSet<TimerId>,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a timer due at `due` carrying the payload `what`.
    pub fn schedule_at(&mut self, due: Instant, what: u64) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.heap.push(Entry { due, id, what });
        id
    }

    /// Cancels a previously scheduled timer. Cancelling an id that
    /// already fired (or never existed) is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id);
    }

    /// How long the caller may sleep from `now` before the earliest live
    /// timer is due. `None` means no timers are scheduled; `Some(ZERO)`
    /// means something is already due.
    pub fn next_timeout(&mut self, now: Instant) -> Option<Duration> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.remove(&head.id) {
                self.heap.pop();
                continue;
            }
            return Some(head.due.saturating_duration_since(now));
        }
    }

    /// Pops every timer due at or before `now`, in due order, as
    /// `(id, payload)` pairs. Cancelled entries are silently dropped.
    pub fn expire(&mut self, now: Instant) -> Vec<(TimerId, u64)> {
        let mut fired = Vec::new();
        while let Some(head) = self.heap.peek() {
            if head.due > now {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            fired.push((entry.id, entry.what));
        }
        fired
    }

    /// Number of scheduled-and-not-yet-fired entries, including lazily
    /// cancelled ones still occupying heap slots.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_due_order() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        wheel.schedule_at(t0 + Duration::from_millis(30), 3);
        wheel.schedule_at(t0 + Duration::from_millis(10), 1);
        wheel.schedule_at(t0 + Duration::from_millis(20), 2);
        let fired = wheel.expire(t0 + Duration::from_millis(25));
        assert_eq!(fired.iter().map(|&(_, w)| w).collect::<Vec<_>>(), [1, 2]);
        let fired = wheel.expire(t0 + Duration::from_millis(40));
        assert_eq!(fired.iter().map(|&(_, w)| w).collect::<Vec<_>>(), [3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_timeout_tracks_earliest_live_entry() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        assert_eq!(wheel.next_timeout(t0), None);
        let early = wheel.schedule_at(t0 + Duration::from_millis(10), 0);
        wheel.schedule_at(t0 + Duration::from_millis(50), 1);
        assert_eq!(wheel.next_timeout(t0), Some(Duration::from_millis(10)));
        wheel.cancel(early);
        // Cancellation is lazy but next_timeout must skip dead heads.
        assert_eq!(wheel.next_timeout(t0), Some(Duration::from_millis(50)));
    }

    #[test]
    fn overdue_entry_yields_zero_timeout() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        wheel.schedule_at(t0, 9);
        assert_eq!(
            wheel.next_timeout(t0 + Duration::from_millis(5)),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn cancelled_entries_do_not_fire() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        let a = wheel.schedule_at(t0 + Duration::from_millis(5), 10);
        let b = wheel.schedule_at(t0 + Duration::from_millis(5), 11);
        wheel.cancel(a);
        let fired = wheel.expire(t0 + Duration::from_millis(10));
        assert_eq!(fired, vec![(b, 11)]);
    }

    #[test]
    fn ids_never_repeat() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        let a = wheel.schedule_at(t0, 0);
        wheel.expire(t0);
        let b = wheel.schedule_at(t0, 0);
        assert_ne!(a, b);
    }
}
