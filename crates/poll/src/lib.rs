//! Readiness polling and timer coalescing for the live reactor.
//!
//! The live runtime's driver serves every executor connection from one
//! thread; what it needs from the OS is exactly two primitives:
//!
//! * [`Poller`] — level-triggered readiness notification over many
//!   non-blocking sockets (`epoll` on Linux, where the cluster runs).
//!   This is the only place in the workspace that talks to the kernel
//!   directly; everything above it is safe Rust over `std` sockets.
//! * [`TimerWheel`] — a hashed timer wheel that coalesces heartbeat
//!   checks, per-task deadlines and the job deadline into one "next
//!   wakeup" the poller can sleep towards, with O(1) insertion and lazy
//!   cancellation (stale entries are filtered by the caller when they
//!   fire, the same trick the simulator's finish-credit heap uses).
//!
//! No external crates: the build environment vendors no `mio`/`libc`, so
//! the epoll shim declares the four syscall wrappers it needs against the
//! C library `std` already links. The FFI surface is confined to the
//! `sys` module; the rest of the crate is `#[forbid(unsafe_code)]`-grade
//! safe code, enforced per-module rather than per-crate only because the
//! shim itself cannot be.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

pub mod signal;
mod sys;
mod wheel;

pub use wheel::{TimerId, TimerWheel};

/// Caps `socket`'s kernel send buffer at roughly `bytes` (`SO_SNDBUF`;
/// Linux doubles the requested value, and clamps to the `wmem` floor).
///
/// Long-lived streaming connections use this so that a consumer that
/// stops reading exhausts a *bounded* kernel buffer: writes then return
/// `WouldBlock` promptly and the application's own high-water
/// backpressure takes over, rather than the kernel autotuning megabytes
/// of invisible queue per stalled peer. Best-effort off Linux (no-op).
pub fn set_send_buffer(socket: &impl std::os::fd::AsRawFd, bytes: usize) -> io::Result<()> {
    sys::set_send_buffer(socket.as_raw_fd(), bytes)
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of a connection with an empty
    /// write queue.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — a connection with queued output waiting
    /// for the socket buffer to drain.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read, or the peer closed (read to find out).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// Error or hangup condition; treat like readable (the read will
    /// surface the actual error/EOF).
    pub error: bool,
}

/// A level-triggered readiness poller over raw file descriptors.
///
/// On Linux this is an `epoll` instance. Registration is by token: the
/// caller picks a `u64` it can map back to its own connection state.
/// Level-triggered semantics mean a ready fd keeps reporting ready until
/// drained — spurious wakeups are allowed and harmless, missed readiness
/// is not and cannot happen.
///
/// # Examples
///
/// ```no_run
/// use sae_poll::{Interest, Poller};
/// use std::net::TcpListener;
/// use std::time::Duration;
///
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// listener.set_nonblocking(true).unwrap();
/// let poller = Poller::new().unwrap();
/// poller.register(&listener, 0, Interest::READABLE).unwrap();
/// let mut events = Vec::new();
/// poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
/// ```
#[derive(Debug)]
pub struct Poller {
    inner: sys::PollerImpl,
}

impl Poller {
    /// Creates a poller instance.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::PollerImpl::new()?,
        })
    }

    /// Registers `source` under `token` with the given interest.
    pub fn register(
        &self,
        source: &impl std::os::fd::AsRawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(source.as_raw_fd(), token, interest)
    }

    /// Changes the interest set of an already-registered `source`.
    pub fn modify(
        &self,
        source: &impl std::os::fd::AsRawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.modify(source.as_raw_fd(), token, interest)
    }

    /// Removes `source` from the poller. Must be called before the fd is
    /// closed (the kernel also auto-deregisters on close, but only once
    /// every duplicate of the fd is gone).
    pub fn deregister(&self, source: &impl std::os::fd::AsRawFd) -> io::Result<()> {
        self.inner.deregister(source.as_raw_fd())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` waits indefinitely), appending events to `events`
    /// after clearing it. Returns the number of events delivered; 0 means
    /// the wait timed out.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&a, 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: the wait must time out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "spurious readiness before any bytes: {events:?}");
        b.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == 7).expect("our token");
        assert!(ev.readable || ev.error);
        let mut buf = [0u8; 8];
        let mut a = &a;
        assert_eq!(a.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn writable_when_buffer_has_room_and_level_triggered() {
        let (a, _b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&a, 1, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        for _ in 0..2 {
            // Level-triggered: an idle writable socket reports writable on
            // every wait, not just the first.
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "socket with room must report writable: {events:?}"
            );
        }
    }

    #[test]
    fn hangup_reports_ready_and_read_sees_eof() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&a, 3, Interest::READABLE).unwrap();
        drop(b);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1, "peer hangup must wake the poller");
        let mut buf = [0u8; 8];
        let mut a = &a;
        assert_eq!(a.read(&mut buf).unwrap(), 0, "hangup reads as EOF");
    }

    #[test]
    fn deregistered_fd_stops_reporting() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&a, 9, Interest::READABLE).unwrap();
        poller.deregister(&a).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 9),
            "deregistered fd still reported: {events:?}"
        );
    }

    #[test]
    fn modify_flips_interest() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&a, 4, Interest::READABLE).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 4 && e.readable));
        // After modify to BOTH, writable shows up too.
        poller.modify(&a, 4, Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 4 && e.writable));
    }
}
