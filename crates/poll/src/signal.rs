//! A SIGINT/SIGTERM latch for graceful shutdown.
//!
//! The job server's reactor needs exactly one bit from the OS signal
//! machinery: "has anyone asked this process to stop?". [`install`] points
//! `SIGINT` and `SIGTERM` at a handler that sets a process-wide atomic
//! flag — the only action that is async-signal-safe without ceremony —
//! and the event loop polls [`triggered`] on its timer tick. No signal
//! masks, no self-pipes: the reactor already wakes at least every check
//! interval, so flag polling bounds shutdown latency by that interval.
//!
//! This lives in `sae-poll` rather than `sae-live` because the handler
//! registration is an FFI call against the C library `std` already links
//! (no `libc` crate is vendored), and this crate is where the workspace
//! confines its `unsafe` system shims — see the `sys` module's docs.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // void (*signal(int signum, void (*handler)(int)))(int) — the
        // handler travels as a plain pointer-sized value, which is what
        // the C ABI passes anyway.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn latch(_signum: i32) {
        // A relaxed store is async-signal-safe: no locks, no allocation.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        let handler = latch as extern "C" fn(i32) as usize;
        // SAFETY: `signal` replaces the process's disposition for the two
        // signals with `latch`, which only stores to a static atomic —
        // async-signal-safe. The call itself passes two scalars.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Points `SIGINT` and `SIGTERM` at the latch. Idempotent; call once at
/// process start. On non-Unix targets this is a no-op (the latch then
/// only trips via [`trigger`]).
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived since the last [`reset`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Trips the latch from code — the programmatic shutdown path tests use
/// in place of delivering a real signal.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Clears the latch (between tests, or before a second serve cycle).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_trips_and_resets() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        assert!(triggered(), "the latch must stay set until reset");
        reset();
        assert!(!triggered());
    }
}
