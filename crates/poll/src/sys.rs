//! OS-specific poller backends.
//!
//! Linux gets real `epoll` through a hand-declared FFI shim (no `libc`
//! crate is vendored, but `std` already links the C library, so the four
//! symbols we need resolve at link time). Everything `unsafe` in the
//! workspace lives in this crate — here and in the [`crate::signal`]
//! latch. Other platforms get a portable fallback
//! that sweeps registered fds with short sleeps — slower, but the reactor
//! only needs level-triggered *eventual* readiness, which the sweep
//! provides.

use std::io;
use std::time::Duration;

use crate::{Event, Interest};

#[cfg(target_os = "linux")]
pub(crate) use epoll::PollerImpl;

#[cfg(not(target_os = "linux"))]
pub(crate) use fallback::PollerImpl;

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0x80000;

    /// Matches the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs the struct (u32 events immediately followed by the u64
    /// payload with no padding); other architectures use natural layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    #[derive(Debug)]
    pub(crate) struct PollerImpl {
        epfd: OwnedFd,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl PollerImpl {
        pub(crate) fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags int and returns a new fd
            // or -1; no pointers are involved.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fd is a freshly created, owned epoll fd.
            Ok(Self {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` is a live, correctly laid out epoll_event for
            // the duration of the call; the kernel copies it out.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event pointer for DEL;
            // passing a dummy keeps us correct everywhere.
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl` — valid pointer, kernel only reads it.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                // Round up so a 1ns timeout still sleeps ~1ms instead of
                // degenerating into a busy spin.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
                None => -1,
            };
            let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
            let n = loop {
                // SAFETY: `raw` is a valid buffer of 128 epoll_events the
                // kernel fills in; maxevents matches its length.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        raw.as_mut_ptr(),
                        raw.len() as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            };
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let data = ev.data;
                events.push(Event {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

/// Caps a socket's kernel send buffer via `SO_SNDBUF` (Linux doubles the
/// requested value for bookkeeping overhead). Streaming endpoints use
/// this so a stalled consumer exhausts a bounded kernel buffer and the
/// application's own backpressure engages, instead of the kernel
/// autotuning megabytes of invisible queue in front of it.
#[cfg(target_os = "linux")]
pub(crate) fn set_send_buffer(fd: std::os::fd::RawFd, bytes: usize) -> io::Result<()> {
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;

    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    let val = i32::try_from(bytes).unwrap_or(i32::MAX);
    // SAFETY: optval points at a live i32 for the duration of the call,
    // and optlen states exactly its size; no memory is retained.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Off-Linux there is no portable `setsockopt` without a vendor crate:
/// the cap is best-effort and the kernel default stands.
#[cfg(not(target_os = "linux"))]
pub(crate) fn set_send_buffer(_fd: std::os::fd::RawFd, _bytes: usize) -> io::Result<()> {
    Ok(())
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::*;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    /// Portable stand-in: remembers registrations and reports every
    /// registered fd as ready on each wait after a short sleep. With
    /// non-blocking sockets a spurious "ready" costs one `WouldBlock`
    /// read, so correctness is preserved; only efficiency suffers, and
    /// only off-Linux.
    #[derive(Debug, Default)]
    pub(crate) struct PollerImpl {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl PollerImpl {
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self::default())
        }

        pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let nap = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            std::thread::sleep(nap);
            let reg = self.registered.lock().unwrap();
            for &(_, token, interest) in reg.iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    error: false,
                });
            }
            Ok(events.len())
        }
    }
}
