//! The complete MAPE-K loop glued together: one controller per executor.

use crate::analyzer::{Analysis, ClimbDirection, CongestionSignal, HillClimbAnalyzer};
use crate::monitor::{IntervalReport, Monitor, ProbeSnapshot};
use crate::planner::Planner;

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapeConfig {
    /// Minimum thread count the climb starts from. The paper uses 2, "since
    /// it is almost impossible that a single thread outperforms multiple
    /// ones".
    pub c_min: usize,
    /// Maximum thread count, typically the node's virtual core count.
    pub c_max: usize,
    /// Stages with fewer total tasks than this cannot complete even two
    /// monitoring intervals; the controller skips adaptation and runs them
    /// at `c_max` (the default behaviour).
    pub min_stage_tasks: usize,
    /// Regression tolerance for the hill climb: an interval only rolls
    /// back when `ζ_j > ζ_{j/2} · (1 + rollback_tolerance)`. Absorbs
    /// measurement noise and keeps CPU-bound stages (flat ζ) climbing.
    pub rollback_tolerance: f64,
    /// Minimum fraction of thread-time spent blocked on I/O for a stage to
    /// be worth tuning. Below it, "there is not enough I/O activity to
    /// justify using fewer threads" (§4, L3) and the controller jumps the
    /// pool straight to `c_max` instead of paying for the full climb.
    pub min_io_fraction: f64,
    /// Climb direction (default: ascend from `c_min`, per §5.2).
    pub direction: ClimbDirection,
    /// Optimised signal (default: the congestion index ζ, per §5.2).
    pub signal: CongestionSignal,
}

impl MapeConfig {
    /// Creates a configuration with the paper's defaults for the interval
    /// heuristics.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= c_min <= c_max`.
    pub fn new(c_min: usize, c_max: usize) -> Self {
        assert!(
            c_min >= 1 && c_min <= c_max,
            "need 1 <= c_min <= c_max, got [{c_min}, {c_max}]"
        );
        Self {
            c_min,
            c_max,
            min_stage_tasks: c_min * 3,
            rollback_tolerance: 0.50,
            min_io_fraction: 0.25,
            direction: ClimbDirection::Ascend,
            signal: CongestionSignal::ZetaIndex,
        }
    }

    /// The paper's setting for a DAS-5 node: explore 2..=32 threads.
    pub fn das5() -> Self {
        Self::new(2, 32)
    }
}

/// Throughput below which an interval counts as "no I/O evidence" (MB/s).
///
/// Such intervals ascend unconditionally: with no I/O there is nothing to
/// congest, and more threads always help CPU-bound work (addresses
/// limitation L3 of the static solution).
const NO_IO_THROUGHPUT: f64 = 5.0;

/// A self-adaptive executor controller: Monitor → Analyze → Plan →
/// (Execute) over a knowledge base of interval reports.
///
/// The controller is deliberately passive about effecting changes: it
/// returns the decided pool size from [`AdaptiveController::task_finished`]
/// and the engine (or `sae-pool` wrapper) applies it via
/// [`crate::apply_plan`] or directly. This keeps the control logic free of
/// backend state and trivially testable — see the crate-level example.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: MapeConfig,
    monitor: Monitor,
    analyzer: HillClimbAnalyzer,
    planner: Planner,
    /// Knowledge base: every completed interval of the current stage.
    history: Vec<IntervalReport>,
    current_threads: usize,
    adapting: bool,
}

impl AdaptiveController {
    /// Creates a controller with the given configuration.
    pub fn new(config: MapeConfig) -> Self {
        Self {
            config,
            monitor: Monitor::new(),
            analyzer: HillClimbAnalyzer::new(config.c_min, config.c_max)
                .with_tolerance(config.rollback_tolerance)
                .with_direction(config.direction)
                .with_signal(config.signal),
            planner: Planner::new(),
            history: Vec::new(),
            current_threads: config.c_max,
            adapting: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> MapeConfig {
        self.config
    }

    /// Starts a new stage at time `now` and returns the thread count to run
    /// with. `task_hint` is the number of tasks this executor expects in the
    /// stage, if known.
    ///
    /// Adaptation starts at `c_min`; stages too short to measure run at
    /// `c_max` unadapted.
    pub fn stage_started(&mut self, now: f64, task_hint: Option<usize>) -> usize {
        self.history.clear();
        self.analyzer.reset();
        self.monitor.stop();
        if task_hint.is_some_and(|t| t < self.config.min_stage_tasks) {
            self.adapting = false;
            self.current_threads = self.config.c_max;
            return self.current_threads;
        }
        self.adapting = true;
        self.current_threads = self.analyzer.start_point();
        self.monitor
            .begin_interval(self.current_threads, now, ProbeSnapshot::default());
        self.current_threads
    }

    /// Records a task completion at `now`, with the executor's epoll-wait
    /// seconds and I/O megabytes *accumulated since the stage started*
    /// (monotone within a stage; the engine resets its counters per stage).
    /// Returns `Some(new_threads)` when the controller decides to change
    /// the pool size.
    pub fn task_finished(&mut self, now: f64, epoll_cum: f64, bytes_cum: f64) -> Option<usize> {
        self.task_finished_probe(now, ProbeSnapshot::basic(epoll_cum, bytes_cum))
    }

    /// Like [`AdaptiveController::task_finished`], with the full probe
    /// snapshot (required when [`MapeConfig::signal`] is
    /// [`CongestionSignal::DiskUtilization`]).
    pub fn task_finished_probe(&mut self, now: f64, snapshot: ProbeSnapshot) -> Option<usize> {
        if !self.adapting {
            return None;
        }
        let report = self.monitor.task_finished(now, snapshot)?;
        self.history.push(report);
        let io_fraction = if report.duration > 0.0 {
            report.epoll_wait / (report.threads as f64 * report.duration)
        } else {
            1.0
        };
        let analysis = if !self.analyzer.settled()
            && (report.throughput < NO_IO_THROUGHPUT || io_fraction < self.config.min_io_fraction)
        {
            // Not enough I/O evidence to justify throttling (L3): the stage
            // is CPU-bound, so jump straight to the CPU-friendly maximum
            // instead of paying for the doubling climb.
            if report.threads >= self.config.c_max {
                Analysis::SettleAtMax
            } else {
                Analysis::Ascend {
                    next: self.config.c_max,
                }
            }
        } else {
            self.analyzer.analyze(&report)
        };
        let plan = self.planner.plan(analysis, self.current_threads);
        let target = plan.target_size();
        if plan.terminal {
            self.adapting = false;
            self.monitor.stop();
        } else {
            let next = target.unwrap_or(self.current_threads);
            self.monitor.begin_interval(next, now, snapshot);
        }
        if let Some(next) = target {
            self.current_threads = next;
            Some(next)
        } else {
            None
        }
    }

    /// Declares the current monitoring interval disturbed — a task on this
    /// executor failed, an executor elsewhere was lost and its work is
    /// being redistributed, or a speculative clone was cancelled mid-run.
    ///
    /// The interval is discarded and restarted from `snapshot` at the same
    /// thread count: its congestion measurements no longer reflect the
    /// thread count under test, and feeding them to the analyzer would
    /// push phantom congestion into the hill climb. The knowledge base
    /// keeps only clean intervals.
    pub fn interval_disturbed(&mut self, now: f64, snapshot: ProbeSnapshot) {
        if !self.adapting || !self.monitor.is_active() {
            return;
        }
        self.monitor
            .begin_interval(self.current_threads, now, snapshot);
    }

    /// The thread count currently in effect.
    pub fn current_threads(&self) -> usize {
        self.current_threads
    }

    /// Whether the controller has finished adapting for the current stage.
    pub fn settled(&self) -> bool {
        !self.adapting
    }

    /// The knowledge base: interval reports of the current stage, in order.
    pub fn history(&self) -> &[IntervalReport] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates an executor where epoll wait per task grows with thread
    /// count as `wait_factor * threads^2` and each task moves `mb_per_task`.
    fn run_synthetic(
        ctl: &mut AdaptiveController,
        tasks: usize,
        mb_per_task: f64,
        wait_factor: f64,
    ) -> Vec<usize> {
        let mut decisions = Vec::new();
        let mut threads = ctl.stage_started(0.0, Some(tasks));
        decisions.push(threads);
        let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
        for _ in 0..tasks {
            now += 1.0;
            // Half a second of base I/O wait per task keeps the synthetic
            // stage above the min_io_fraction floor; contention adds the
            // superlinear component.
            epoll += 0.5 + wait_factor * (threads as f64).powi(2);
            bytes += mb_per_task;
            if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                threads = next;
                decisions.push(next);
            }
        }
        decisions
    }

    #[test]
    fn starts_at_c_min() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, Some(100)), 2);
    }

    #[test]
    fn contention_growth_causes_rollback() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let decisions = run_synthetic(&mut ctl, 300, 100.0, 0.01);
        assert!(ctl.settled());
        let last = *decisions.last().unwrap();
        assert!(last < 32, "should not settle at max: {decisions:?}");
        assert!(last >= 2);
    }

    #[test]
    fn cpu_only_stage_climbs_to_max() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        // Zero I/O: every interval has ~0 throughput.
        let decisions = run_synthetic(&mut ctl, 300, 0.0, 0.0);
        assert!(ctl.settled());
        assert_eq!(*decisions.last().unwrap(), 32);
    }

    #[test]
    fn low_io_fraction_jumps_to_max_immediately() {
        // A CPU-bound stage with *some* I/O (µ above the zero-IO floor but
        // ε far below min_io_fraction) jumps to c_max after one interval
        // instead of paying for the doubling climb.
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let mut threads = ctl.stage_started(0.0, Some(300));
        let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
        let mut jumps = Vec::new();
        for _ in 0..20 {
            now += 1.0;
            epoll += 0.02; // 2% of thread-time blocked
            bytes += 100.0;
            if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                threads = next;
                jumps.push(next);
            }
        }
        assert_eq!(jumps.first(), Some(&32), "should jump straight to c_max");
        assert_eq!(threads, 32);
    }

    #[test]
    fn short_stage_runs_at_default() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, Some(3)), 32);
        assert!(ctl.settled());
        assert_eq!(ctl.task_finished(1.0, 0.0, 0.0), None);
    }

    #[test]
    fn unknown_task_count_still_adapts() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, None), 2);
        assert!(!ctl.settled());
    }

    #[test]
    fn history_records_every_interval() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 16));
        run_synthetic(&mut ctl, 200, 100.0, 0.005);
        assert!(!ctl.history().is_empty());
        // Interval thread counts double from c_min.
        assert_eq!(ctl.history()[0].threads, 2);
        if ctl.history().len() > 1 {
            assert_eq!(ctl.history()[1].threads, 4);
        }
    }

    #[test]
    fn new_stage_resets_state() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        run_synthetic(&mut ctl, 300, 100.0, 0.01);
        assert!(ctl.settled());
        let threads = ctl.stage_started(1000.0, Some(300));
        assert_eq!(threads, 2);
        assert!(!ctl.settled());
        assert!(ctl.history().is_empty());
    }

    #[test]
    fn decisions_stay_in_bounds() {
        for wait_factor in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
            let decisions = run_synthetic(&mut ctl, 500, 50.0, wait_factor);
            for d in decisions {
                assert!((2..=32).contains(&d), "decision {d} out of bounds");
            }
        }
    }

    #[test]
    fn disturbed_interval_is_discarded_not_analyzed() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let threads = ctl.stage_started(0.0, Some(300));
        assert_eq!(threads, 2);
        // One completion into the first interval (needs `threads` = 2).
        assert_eq!(ctl.task_finished(1.0, 0.6, 100.0), None);
        assert!(ctl.history().is_empty());
        // A failure elsewhere poisons the interval: restart it.
        ctl.interval_disturbed(1.5, crate::ProbeSnapshot::basic(0.7, 110.0));
        // The next completion is the restarted interval's *first*, so no
        // report is produced and nothing enters the knowledge base.
        assert_eq!(ctl.task_finished(2.0, 1.3, 210.0), None);
        assert!(ctl.history().is_empty());
        // Two clean completions after the restart close an interval.
        let _ = ctl.task_finished(3.0, 2.0, 320.0);
        assert_eq!(ctl.history().len(), 1);
        assert_eq!(ctl.history()[0].threads, 2);
    }

    #[test]
    fn disturbance_after_settling_is_inert() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(3)); // short stage: no adaptation
        assert!(ctl.settled());
        ctl.interval_disturbed(1.0, crate::ProbeSnapshot::default());
        assert!(ctl.settled());
        assert_eq!(ctl.task_finished(2.0, 0.0, 0.0), None);
    }

    #[test]
    fn das5_config_bounds() {
        let cfg = MapeConfig::das5();
        assert_eq!(cfg.c_min, 2);
        assert_eq!(cfg.c_max, 32);
    }

    #[test]
    #[should_panic(expected = "c_min")]
    fn invalid_config_rejected() {
        let _ = MapeConfig::new(0, 4);
    }
}
