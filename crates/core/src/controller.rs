//! The complete MAPE-K loop glued together: one controller per executor.

use crate::analyzer::{Analysis, ClimbDirection, CongestionSignal, HillClimbAnalyzer};
use crate::journal::{DecisionAction, DecisionJournal, DecisionRecord};
use crate::monitor::{IntervalReport, Monitor, ProbeSnapshot};
use crate::planner::Planner;

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapeConfig {
    /// Minimum thread count the climb starts from. The paper uses 2, "since
    /// it is almost impossible that a single thread outperforms multiple
    /// ones".
    pub c_min: usize,
    /// Maximum thread count, typically the node's virtual core count.
    pub c_max: usize,
    /// Stages with fewer total tasks than this cannot complete even two
    /// monitoring intervals; the controller skips adaptation and runs them
    /// at `c_max` (the default behaviour).
    pub min_stage_tasks: usize,
    /// Regression tolerance for the hill climb: an interval only rolls
    /// back when `ζ_j > ζ_{j/2} · (1 + rollback_tolerance)`. Absorbs
    /// measurement noise and keeps CPU-bound stages (flat ζ) climbing.
    pub rollback_tolerance: f64,
    /// Minimum fraction of thread-time spent blocked on I/O for a stage to
    /// be worth tuning. Below it, "there is not enough I/O activity to
    /// justify using fewer threads" (§4, L3) and the controller jumps the
    /// pool straight to `c_max` instead of paying for the full climb.
    pub min_io_fraction: f64,
    /// Climb direction (default: ascend from `c_min`, per §5.2).
    pub direction: ClimbDirection,
    /// Optimised signal (default: the congestion index ζ, per §5.2).
    pub signal: CongestionSignal,
}

impl MapeConfig {
    /// Creates a configuration with the paper's defaults for the interval
    /// heuristics.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= c_min <= c_max`.
    pub fn new(c_min: usize, c_max: usize) -> Self {
        assert!(
            c_min >= 1 && c_min <= c_max,
            "need 1 <= c_min <= c_max, got [{c_min}, {c_max}]"
        );
        Self {
            c_min,
            c_max,
            min_stage_tasks: c_min * 3,
            rollback_tolerance: 0.50,
            min_io_fraction: 0.25,
            direction: ClimbDirection::Ascend,
            signal: CongestionSignal::ZetaIndex,
        }
    }

    /// The paper's setting for a DAS-5 node: explore 2..=32 threads.
    pub fn das5() -> Self {
        Self::new(2, 32)
    }
}

/// Throughput below which an interval counts as "no I/O evidence" (MB/s).
///
/// Such intervals ascend unconditionally: with no I/O there is nothing to
/// congest, and more threads always help CPU-bound work (addresses
/// limitation L3 of the static solution).
const NO_IO_THROUGHPUT: f64 = 5.0;

/// A self-adaptive executor controller: Monitor → Analyze → Plan →
/// (Execute) over a knowledge base of interval reports.
///
/// The controller is deliberately passive about effecting changes: it
/// returns the decided pool size from [`AdaptiveController::task_finished`]
/// and the engine (or `sae-pool` wrapper) applies it via
/// [`crate::apply_plan`] or directly. This keeps the control logic free of
/// backend state and trivially testable — see the crate-level example.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    config: MapeConfig,
    monitor: Monitor,
    analyzer: HillClimbAnalyzer,
    planner: Planner,
    /// Knowledge base: every completed interval of the current stage.
    history: Vec<IntervalReport>,
    current_threads: usize,
    adapting: bool,
    /// Decision journal: one record per closed interval plus a terminal
    /// record for every stage (see [`crate::DecisionRecord`]).
    journal: DecisionJournal,
    /// Id stamped into journal records (set via
    /// [`AdaptiveController::with_executor`]).
    executor: usize,
    /// Adaptation episode of the stage in progress (counts stage starts).
    stage: usize,
    /// Total stage starts seen; `stage` of the *next* stage.
    stages_started: usize,
    /// Interval index `j` within the current stage.
    interval_idx: usize,
    /// Whether a terminal journal record was emitted for the current
    /// stage. Starts `true`: there is nothing to finalize before the
    /// first stage.
    finalized: bool,
}

impl AdaptiveController {
    /// Creates a controller with the given configuration.
    pub fn new(config: MapeConfig) -> Self {
        Self {
            config,
            monitor: Monitor::new(),
            analyzer: HillClimbAnalyzer::new(config.c_min, config.c_max)
                .with_tolerance(config.rollback_tolerance)
                .with_direction(config.direction)
                .with_signal(config.signal),
            planner: Planner::new(),
            history: Vec::new(),
            current_threads: config.c_max,
            adapting: false,
            journal: DecisionJournal::new(),
            executor: 0,
            stage: 0,
            stages_started: 0,
            interval_idx: 0,
            finalized: true,
        }
    }

    /// Sets the executor id stamped into journal records.
    pub fn with_executor(mut self, executor: usize) -> Self {
        self.executor = executor;
        self
    }

    /// The decision journal this controller appends to. The handle is
    /// shared: clone it to drain or render records from outside.
    pub fn journal(&self) -> &DecisionJournal {
        &self.journal
    }

    /// Replaces the journal handle, so several components can funnel into
    /// one shared journal. Call before the first stage starts.
    pub fn set_journal(&mut self, journal: DecisionJournal) {
        self.journal = journal;
    }

    /// The configuration in use.
    pub fn config(&self) -> MapeConfig {
        self.config
    }

    /// Starts a new stage at time `now` and returns the thread count to run
    /// with. `task_hint` is the number of tasks this executor expects in the
    /// stage, if known.
    ///
    /// Adaptation starts at `c_min`; stages too short to measure run at
    /// `c_max` unadapted.
    pub fn stage_started(&mut self, now: f64, task_hint: Option<usize>) -> usize {
        self.finalize_stage(now);
        self.history.clear();
        self.analyzer.reset();
        self.monitor.stop();
        self.stage = self.stages_started;
        self.stages_started += 1;
        self.interval_idx = 0;
        if let Some(tasks) = task_hint.filter(|t| *t < self.config.min_stage_tasks) {
            let pool_before = self.current_threads;
            self.adapting = false;
            self.current_threads = self.config.c_max;
            self.finalized = true;
            self.journal.push(DecisionRecord {
                stage: self.stage,
                executor: self.executor,
                interval: 0,
                at: now,
                threads: self.current_threads,
                epoll_wait_s: 0.0,
                throughput_bps: 0.0,
                zeta: 0.0,
                pool_before,
                pool_after: self.current_threads,
                action: DecisionAction::Hold,
                rationale: format!(
                    "stage of {tasks} tasks is below min_stage_tasks={}: too short to \
                     complete two monitoring intervals, run unadapted at c_max={}",
                    self.config.min_stage_tasks, self.config.c_max
                ),
            });
            return self.current_threads;
        }
        self.adapting = true;
        self.finalized = false;
        self.current_threads = self.analyzer.start_point();
        self.monitor
            .begin_interval(self.current_threads, now, ProbeSnapshot::default());
        self.current_threads
    }

    /// Declares the current stage over at time `now`.
    ///
    /// If the hill climb was still open — the stage ran out of tasks
    /// before the analyzer reached a verdict — a terminal
    /// [`DecisionAction::Hold`] record is journaled, so every stage's
    /// journal ends with a terminal action. Idempotent; also called
    /// implicitly by the next [`AdaptiveController::stage_started`].
    pub fn finalize_stage(&mut self, now: f64) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.adapting = false;
        self.monitor.stop();
        self.journal.push(DecisionRecord {
            stage: self.stage,
            executor: self.executor,
            interval: self.interval_idx,
            at: now,
            threads: self.current_threads,
            epoll_wait_s: 0.0,
            throughput_bps: 0.0,
            zeta: 0.0,
            pool_before: self.current_threads,
            pool_after: self.current_threads,
            action: DecisionAction::Hold,
            rationale: format!(
                "stage ended after {} clean interval(s) with the climb still open: \
                 hold at {} threads",
                self.interval_idx, self.current_threads
            ),
        });
    }

    /// Records a task completion at `now`, with the executor's epoll-wait
    /// seconds and I/O megabytes *accumulated since the stage started*
    /// (monotone within a stage; the engine resets its counters per stage).
    /// Returns `Some(new_threads)` when the controller decides to change
    /// the pool size.
    pub fn task_finished(&mut self, now: f64, epoll_cum: f64, bytes_cum: f64) -> Option<usize> {
        self.task_finished_probe(now, ProbeSnapshot::basic(epoll_cum, bytes_cum))
    }

    /// Like [`AdaptiveController::task_finished`], with the full probe
    /// snapshot (required when [`MapeConfig::signal`] is
    /// [`CongestionSignal::DiskUtilization`]).
    pub fn task_finished_probe(&mut self, now: f64, snapshot: ProbeSnapshot) -> Option<usize> {
        if !self.adapting {
            return None;
        }
        let report = self.monitor.task_finished(now, snapshot)?;
        self.history.push(report);
        let io_fraction = self.io_fraction(&report);
        let low_io = !self.analyzer.settled()
            && (report.throughput < NO_IO_THROUGHPUT || io_fraction < self.config.min_io_fraction);
        // The comparison baseline, captured before `analyze` replaces it.
        let prev = self.analyzer.previous();
        let analysis = if low_io {
            // Not enough I/O evidence to justify throttling (L3): the stage
            // is CPU-bound, so jump straight to the CPU-friendly maximum
            // instead of paying for the doubling climb.
            if report.threads >= self.config.c_max {
                Analysis::SettleAtMax
            } else {
                Analysis::Ascend {
                    next: self.config.c_max,
                }
            }
        } else {
            self.analyzer.analyze(&report)
        };
        let plan = self.planner.plan(analysis, self.current_threads);
        let target = plan.target_size();
        self.journal_interval(now, &report, low_io, prev, analysis, target, plan.terminal);
        if plan.terminal {
            self.adapting = false;
            self.monitor.stop();
        } else {
            let next = target.unwrap_or(self.current_threads);
            self.monitor.begin_interval(next, now, snapshot);
        }
        if let Some(next) = target {
            self.current_threads = next;
            Some(next)
        } else {
            None
        }
    }

    /// Appends the journal record explaining the decision for one closed
    /// interval.
    #[allow(clippy::too_many_arguments)]
    fn journal_interval(
        &mut self,
        now: f64,
        report: &IntervalReport,
        low_io: bool,
        prev: Option<(usize, f64)>,
        analysis: Analysis,
        target: Option<usize>,
        terminal: bool,
    ) {
        let score = self.config.signal.score(report);
        let label = match self.config.signal {
            CongestionSignal::ZetaIndex => "zeta",
            CongestionSignal::DiskUtilization => "1-disk_util",
        };
        let tol_pct = self.config.rollback_tolerance * 100.0;
        let (action, rationale) = if low_io {
            let evidence =
                format!(
                "mu={:.2} MB/s, I/O wait fraction {:.3} (floors: mu >= {NO_IO_THROUGHPUT} MB/s, \
                 fraction >= {:.2})",
                report.throughput, self.io_fraction(report), self.config.min_io_fraction
            );
            match analysis {
                Analysis::Ascend { next } => (
                    DecisionAction::Ascend,
                    format!(
                        "{evidence}: not enough I/O evidence to throttle (L3), \
                         jump straight to c_max={next}"
                    ),
                ),
                _ => (
                    DecisionAction::Hold,
                    format!(
                        "{evidence}: CPU-bound stage already at c_max={}, hold",
                        self.config.c_max
                    ),
                ),
            }
        } else {
            match analysis {
                Analysis::Ascend { next } => (
                    DecisionAction::Ascend,
                    match prev {
                        None => format!(
                            "first interval at {} threads ({label}={score:.4}): \
                             no baseline yet, climb to {next}",
                            report.threads
                        ),
                        Some((pt, ps)) => format!(
                            "{label}={score:.4} at {} threads within {tol_pct:.0}% of \
                             {label}={ps:.4} at {pt}: climb to {next}",
                            report.threads
                        ),
                    },
                ),
                Analysis::Rollback { to } => {
                    let (pt, ps) = prev.expect("rollback implies a baseline");
                    (
                        DecisionAction::RollBack,
                        format!(
                            "{label}={score:.4} at {} threads regressed more than \
                             {tol_pct:.0}% past {label}={ps:.4} at {pt}: roll back to {to} and hold",
                            report.threads
                        ),
                    )
                }
                Analysis::SettleAtMax => (
                    DecisionAction::Hold,
                    format!(
                        "still improving at the climb boundary ({} threads, {label}={score:.4}): \
                         hold for the rest of the stage",
                        report.threads
                    ),
                ),
            }
        };
        self.journal.push(DecisionRecord {
            stage: self.stage,
            executor: self.executor,
            interval: self.interval_idx,
            at: now,
            threads: report.threads,
            epoll_wait_s: report.epoll_wait,
            throughput_bps: report.throughput * 1024.0 * 1024.0,
            zeta: report.zeta,
            pool_before: self.current_threads,
            pool_after: target.unwrap_or(self.current_threads),
            action,
            rationale,
        });
        self.interval_idx += 1;
        if terminal {
            self.finalized = true;
        }
    }

    /// Fraction of thread-time the interval spent blocked on I/O.
    fn io_fraction(&self, report: &IntervalReport) -> f64 {
        if report.duration > 0.0 {
            report.epoll_wait / (report.threads as f64 * report.duration)
        } else {
            1.0
        }
    }

    /// Declares the current monitoring interval disturbed — a task on this
    /// executor failed, an executor elsewhere was lost and its work is
    /// being redistributed, or a speculative clone was cancelled mid-run.
    ///
    /// The interval is discarded and restarted from `snapshot` at the same
    /// thread count: its congestion measurements no longer reflect the
    /// thread count under test, and feeding them to the analyzer would
    /// push phantom congestion into the hill climb. The knowledge base
    /// keeps only clean intervals.
    pub fn interval_disturbed(&mut self, now: f64, snapshot: ProbeSnapshot) {
        if !self.adapting || !self.monitor.is_active() {
            return;
        }
        self.monitor
            .begin_interval(self.current_threads, now, snapshot);
    }

    /// Like [`AdaptiveController::interval_disturbed`], but leaves a
    /// [`DecisionAction::Poisoned`] record in the journal explaining *why*
    /// the interval was discarded — the live runtime's fault-aware variant,
    /// where a discarded interval is evidence worth keeping (the sim's
    /// disturbances are already visible in its own trace).
    ///
    /// The interval index does not advance: the restarted interval keeps
    /// the same `j`, so the journal shows the poisoning and the eventual
    /// clean closure of the same interval side by side.
    pub fn interval_poisoned(&mut self, now: f64, snapshot: ProbeSnapshot, reason: &str) {
        if !self.adapting || !self.monitor.is_active() {
            return;
        }
        self.journal.push(DecisionRecord {
            stage: self.stage,
            executor: self.executor,
            interval: self.interval_idx,
            at: now,
            threads: self.current_threads,
            epoll_wait_s: 0.0,
            throughput_bps: 0.0,
            zeta: 0.0,
            pool_before: self.current_threads,
            pool_after: self.current_threads,
            action: DecisionAction::Poisoned,
            rationale: format!(
                "interval overlaps a detected fault ({reason}): measurements discarded, \
                 interval restarted at {} threads",
                self.current_threads
            ),
        });
        self.interval_disturbed(now, snapshot);
    }

    /// The thread count currently in effect.
    pub fn current_threads(&self) -> usize {
        self.current_threads
    }

    /// Whether the controller has finished adapting for the current stage.
    pub fn settled(&self) -> bool {
        !self.adapting
    }

    /// The knowledge base: interval reports of the current stage, in order.
    pub fn history(&self) -> &[IntervalReport] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates an executor where epoll wait per task grows with thread
    /// count as `wait_factor * threads^2` and each task moves `mb_per_task`.
    fn run_synthetic(
        ctl: &mut AdaptiveController,
        tasks: usize,
        mb_per_task: f64,
        wait_factor: f64,
    ) -> Vec<usize> {
        let mut decisions = Vec::new();
        let mut threads = ctl.stage_started(0.0, Some(tasks));
        decisions.push(threads);
        let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
        for _ in 0..tasks {
            now += 1.0;
            // Half a second of base I/O wait per task keeps the synthetic
            // stage above the min_io_fraction floor; contention adds the
            // superlinear component.
            epoll += 0.5 + wait_factor * (threads as f64).powi(2);
            bytes += mb_per_task;
            if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                threads = next;
                decisions.push(next);
            }
        }
        decisions
    }

    #[test]
    fn starts_at_c_min() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, Some(100)), 2);
    }

    #[test]
    fn contention_growth_causes_rollback() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let decisions = run_synthetic(&mut ctl, 300, 100.0, 0.01);
        assert!(ctl.settled());
        let last = *decisions.last().unwrap();
        assert!(last < 32, "should not settle at max: {decisions:?}");
        assert!(last >= 2);
    }

    #[test]
    fn cpu_only_stage_climbs_to_max() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        // Zero I/O: every interval has ~0 throughput.
        let decisions = run_synthetic(&mut ctl, 300, 0.0, 0.0);
        assert!(ctl.settled());
        assert_eq!(*decisions.last().unwrap(), 32);
    }

    #[test]
    fn low_io_fraction_jumps_to_max_immediately() {
        // A CPU-bound stage with *some* I/O (µ above the zero-IO floor but
        // ε far below min_io_fraction) jumps to c_max after one interval
        // instead of paying for the doubling climb.
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let mut threads = ctl.stage_started(0.0, Some(300));
        let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
        let mut jumps = Vec::new();
        for _ in 0..20 {
            now += 1.0;
            epoll += 0.02; // 2% of thread-time blocked
            bytes += 100.0;
            if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                threads = next;
                jumps.push(next);
            }
        }
        assert_eq!(jumps.first(), Some(&32), "should jump straight to c_max");
        assert_eq!(threads, 32);
    }

    #[test]
    fn short_stage_runs_at_default() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, Some(3)), 32);
        assert!(ctl.settled());
        assert_eq!(ctl.task_finished(1.0, 0.0, 0.0), None);
    }

    #[test]
    fn unknown_task_count_still_adapts() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        assert_eq!(ctl.stage_started(0.0, None), 2);
        assert!(!ctl.settled());
    }

    #[test]
    fn history_records_every_interval() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 16));
        run_synthetic(&mut ctl, 200, 100.0, 0.005);
        assert!(!ctl.history().is_empty());
        // Interval thread counts double from c_min.
        assert_eq!(ctl.history()[0].threads, 2);
        if ctl.history().len() > 1 {
            assert_eq!(ctl.history()[1].threads, 4);
        }
    }

    #[test]
    fn new_stage_resets_state() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        run_synthetic(&mut ctl, 300, 100.0, 0.01);
        assert!(ctl.settled());
        let threads = ctl.stage_started(1000.0, Some(300));
        assert_eq!(threads, 2);
        assert!(!ctl.settled());
        assert!(ctl.history().is_empty());
    }

    #[test]
    fn decisions_stay_in_bounds() {
        for wait_factor in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
            let decisions = run_synthetic(&mut ctl, 500, 50.0, wait_factor);
            for d in decisions {
                assert!((2..=32).contains(&d), "decision {d} out of bounds");
            }
        }
    }

    #[test]
    fn disturbed_interval_is_discarded_not_analyzed() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let threads = ctl.stage_started(0.0, Some(300));
        assert_eq!(threads, 2);
        // One completion into the first interval (needs `threads` = 2).
        assert_eq!(ctl.task_finished(1.0, 0.6, 100.0), None);
        assert!(ctl.history().is_empty());
        // A failure elsewhere poisons the interval: restart it.
        ctl.interval_disturbed(1.5, crate::ProbeSnapshot::basic(0.7, 110.0));
        // The next completion is the restarted interval's *first*, so no
        // report is produced and nothing enters the knowledge base.
        assert_eq!(ctl.task_finished(2.0, 1.3, 210.0), None);
        assert!(ctl.history().is_empty());
        // Two clean completions after the restart close an interval.
        let _ = ctl.task_finished(3.0, 2.0, 320.0);
        assert_eq!(ctl.history().len(), 1);
        assert_eq!(ctl.history()[0].threads, 2);
    }

    #[test]
    fn poisoned_interval_journals_and_restarts() {
        use crate::journal::DecisionAction;
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32)).with_executor(1);
        let _ = ctl.stage_started(0.0, Some(300));
        assert_eq!(ctl.task_finished(1.0, 0.6, 100.0), None);
        ctl.interval_poisoned(
            1.5,
            crate::ProbeSnapshot::basic(0.7, 110.0),
            "executor 2 lost",
        );
        // The poisoning is journaled, non-terminal, at the same interval
        // index the restarted interval will close under.
        let records = ctl.journal().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].action, DecisionAction::Poisoned);
        assert_eq!(records[0].interval, 0);
        assert!(records[0].rationale.contains("executor 2 lost"));
        assert!(!records[0].action.is_terminal());
        // The restarted interval closes cleanly under the same index.
        let _ = ctl.task_finished(2.0, 1.3, 210.0);
        let _ = ctl.task_finished(3.0, 2.0, 320.0);
        assert_eq!(ctl.history().len(), 1);
        let records = ctl.journal().records();
        assert_eq!(records.last().unwrap().interval, 0);
        assert_ne!(records.last().unwrap().action, DecisionAction::Poisoned);
    }

    #[test]
    fn poisoning_after_settling_is_inert() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(3)); // short stage: no adaptation
        let before = ctl.journal().len();
        ctl.interval_poisoned(1.0, crate::ProbeSnapshot::default(), "noise");
        assert_eq!(ctl.journal().len(), before);
    }

    #[test]
    fn disturbance_after_settling_is_inert() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(3)); // short stage: no adaptation
        assert!(ctl.settled());
        ctl.interval_disturbed(1.0, crate::ProbeSnapshot::default());
        assert!(ctl.settled());
        assert_eq!(ctl.task_finished(2.0, 0.0, 0.0), None);
    }

    #[test]
    fn journal_records_one_entry_per_interval_plus_terminal() {
        use crate::journal::DecisionAction;
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32)).with_executor(3);
        run_synthetic(&mut ctl, 300, 100.0, 0.01);
        assert!(ctl.settled());
        let records = ctl.journal().records();
        assert_eq!(records.len(), ctl.history().len());
        for (j, r) in records.iter().enumerate() {
            assert_eq!(r.interval, j);
            assert_eq!(r.executor, 3);
            assert_eq!(r.stage, 0);
            assert!(!r.rationale.is_empty());
        }
        // Contention growth ends in a rollback, which is terminal.
        let last = records.last().unwrap();
        assert_eq!(last.action, DecisionAction::RollBack);
        assert!(last.pool_after < last.pool_before);
    }

    #[test]
    fn journal_interval_measurements_match_history() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 16));
        run_synthetic(&mut ctl, 200, 100.0, 0.005);
        let records = ctl.journal().records();
        for (r, h) in records.iter().zip(ctl.history()) {
            assert_eq!(r.threads, h.threads);
            assert_eq!(r.epoll_wait_s, h.epoll_wait);
            assert_eq!(r.zeta, h.zeta);
            assert_eq!(r.throughput_bps, h.throughput * 1024.0 * 1024.0);
        }
    }

    #[test]
    fn short_stage_journals_a_terminal_hold() {
        use crate::journal::DecisionAction;
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(3));
        let records = ctl.journal().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].action, DecisionAction::Hold);
        assert_eq!(records[0].pool_after, 32);
        assert!(records[0].rationale.contains("min_stage_tasks"));
    }

    #[test]
    fn finalize_mid_climb_emits_terminal_hold() {
        use crate::journal::DecisionAction;
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(300));
        // Close exactly one interval (2 completions at 2 threads), leaving
        // the climb open.
        let _ = ctl.task_finished(1.0, 0.6, 100.0);
        let _ = ctl.task_finished(2.0, 1.2, 200.0);
        assert!(!ctl.settled());
        ctl.finalize_stage(3.0);
        assert!(ctl.settled());
        let records = ctl.journal().records();
        let last = records.last().unwrap();
        assert_eq!(last.action, DecisionAction::Hold);
        assert!(last.action.is_terminal());
        assert_eq!(last.pool_before, last.pool_after);
        // Finalizing again is a no-op.
        ctl.finalize_stage(4.0);
        assert_eq!(ctl.journal().len(), records.len());
    }

    #[test]
    fn next_stage_finalizes_the_previous_episode() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let _ = ctl.stage_started(0.0, Some(300));
        let _ = ctl.task_finished(1.0, 0.6, 100.0);
        let _ = ctl.stage_started(10.0, Some(300));
        // The open stage-0 episode was closed with a terminal Hold.
        let records = ctl.journal().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].stage, 0);
        assert!(records[0].action.is_terminal());
        // New records land in episode 1.
        let _ = ctl.task_finished(11.0, 0.6, 100.0);
        let _ = ctl.task_finished(12.0, 1.2, 200.0);
        let records = ctl.journal().records();
        assert_eq!(records.last().unwrap().stage, 1);
    }

    #[test]
    fn every_episode_ends_terminal() {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 8));
        for stage in 0..4 {
            run_synthetic(&mut ctl, 100, 80.0, 0.002 * stage as f64);
        }
        ctl.finalize_stage(1e6);
        let records = ctl.journal().records();
        for stage in 0..4 {
            let last = records.iter().rfind(|r| r.stage == stage);
            assert!(
                last.is_some_and(|r| r.action.is_terminal()),
                "episode {stage} does not end terminal: {records:?}"
            );
        }
    }

    #[test]
    fn das5_config_bounds() {
        let cfg = MapeConfig::das5();
        assert_eq!(cfg.c_min, 2);
        assert_eq!(cfg.c_max, 32);
    }

    #[test]
    #[should_panic(expected = "c_min")]
    fn invalid_config_rejected() {
        let _ = MapeConfig::new(0, 4);
    }
}
