//! Backend-agnostic traits the controller acts through.

/// A worker pool whose maximum size can be adjusted at runtime.
///
/// The paper's effector calls Java's
/// `ThreadPoolExecutor.setMaximumPoolSize()`; the simulated executor in
/// `sae-dag` and the real pool in `sae-pool` both implement this trait so
/// the same controller drives either.
pub trait TunablePool {
    /// Current maximum number of concurrently running workers.
    fn max_pool_size(&self) -> usize;

    /// Sets the maximum number of concurrently running workers.
    ///
    /// Implementations must tolerate both growth and shrink while tasks are
    /// in flight: running tasks are never aborted; a shrink takes effect as
    /// tasks complete.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `size` is zero.
    fn set_max_pool_size(&mut self, size: usize);
}

/// The driver-side scheduler's view of an executor's capacity.
///
/// Changing a pool inside an executor is not enough: the Spark scheduler
/// tracks each executor's free cores to decide how many tasks to assign
/// (§5.3–5.4). The paper extends the messaging protocol so executors can
/// notify the scheduler; this trait is that protocol's receiving end.
pub trait SchedulerNotifier {
    /// Informs the scheduler that `executor` now runs at most `new_size`
    /// concurrent tasks.
    fn pool_size_changed(&mut self, executor: usize, new_size: usize);
}

/// A no-op notifier for setups without a central scheduler (e.g. driving a
/// bare thread pool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoScheduler;

impl SchedulerNotifier for NoScheduler {
    fn pool_size_changed(&mut self, _executor: usize, _new_size: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakePool(usize);

    impl TunablePool for FakePool {
        fn max_pool_size(&self) -> usize {
            self.0
        }
        fn set_max_pool_size(&mut self, size: usize) {
            self.0 = size;
        }
    }

    #[test]
    fn tunable_pool_roundtrip() {
        let mut p = FakePool(32);
        assert_eq!(p.max_pool_size(), 32);
        p.set_max_pool_size(8);
        assert_eq!(p.max_pool_size(), 8);
    }

    #[test]
    fn no_scheduler_is_inert() {
        let mut n = NoScheduler;
        n.pool_size_changed(0, 4); // must not panic
    }

    #[test]
    fn traits_are_object_safe() {
        let mut p = FakePool(1);
        let pool: &mut dyn TunablePool = &mut p;
        pool.set_max_pool_size(2);
        let mut n = NoScheduler;
        let notifier: &mut dyn SchedulerNotifier = &mut n;
        notifier.pool_size_changed(1, 2);
    }
}
