//! The [P]lan and [E]xecute parts of the MAPE-K loop (§5.3–5.4).

use crate::analyzer::Analysis;
use crate::traits::{SchedulerNotifier, TunablePool};

/// One effector action.
///
/// Resizing the pool alone is not enough: the driver's scheduler tracks
/// each executor's free cores to decide task assignment, so a resize that
/// is not propagated leaves the system in an inconsistent state (§5.3).
/// The planner therefore always pairs the resize with a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Set the executor thread pool's maximum size.
    ResizePool(usize),
    /// Tell the driver scheduler about the executor's new capacity.
    NotifyScheduler(usize),
}

/// An ordered list of actions realising one analyzer decision.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    /// Actions in execution order.
    pub actions: Vec<Action>,
    /// Whether adaptation is finished for this stage after this plan.
    pub terminal: bool,
}

impl Plan {
    /// The pool size this plan moves to, if it changes the pool.
    pub fn target_size(&self) -> Option<usize> {
        self.actions.iter().find_map(|a| match a {
            Action::ResizePool(n) => Some(*n),
            Action::NotifyScheduler(_) => None,
        })
    }
}

/// Devises action sequences that keep pool and scheduler consistent.
///
/// # Examples
///
/// ```
/// use sae_core::{Action, Analysis, Planner};
///
/// let planner = Planner::new();
/// let plan = planner.plan(Analysis::Ascend { next: 8 }, 4);
/// assert_eq!(plan.actions, vec![Action::ResizePool(8), Action::NotifyScheduler(8)]);
/// assert!(!plan.terminal);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Creates a planner.
    pub fn new() -> Self {
        Self
    }

    /// Translates an analysis into a plan, given the current pool size.
    pub fn plan(&self, analysis: Analysis, current_size: usize) -> Plan {
        match analysis {
            Analysis::Ascend { next } => Plan {
                actions: Self::resize_actions(current_size, next),
                terminal: false,
            },
            Analysis::Rollback { to } => Plan {
                actions: Self::resize_actions(current_size, to),
                terminal: true,
            },
            Analysis::SettleAtMax => Plan {
                actions: Vec::new(),
                terminal: true,
            },
        }
    }

    fn resize_actions(current: usize, target: usize) -> Vec<Action> {
        if current == target {
            Vec::new()
        } else {
            vec![Action::ResizePool(target), Action::NotifyScheduler(target)]
        }
    }
}

/// The \[E\]xecute function: applies a plan to the managed resources.
///
/// Returns the pool size after execution.
///
/// # Examples
///
/// ```
/// use sae_core::{apply_plan, Action, NoScheduler, Plan, TunablePool};
///
/// struct Pool(usize);
/// impl TunablePool for Pool {
///     fn max_pool_size(&self) -> usize { self.0 }
///     fn set_max_pool_size(&mut self, size: usize) { self.0 = size; }
/// }
///
/// let mut pool = Pool(32);
/// let plan = Plan {
///     actions: vec![Action::ResizePool(8), Action::NotifyScheduler(8)],
///     terminal: false,
/// };
/// assert_eq!(apply_plan(&plan, 0, &mut pool, &mut NoScheduler), 8);
/// ```
pub fn apply_plan<P: TunablePool + ?Sized, S: SchedulerNotifier + ?Sized>(
    plan: &Plan,
    executor: usize,
    pool: &mut P,
    scheduler: &mut S,
) -> usize {
    for action in &plan.actions {
        match *action {
            Action::ResizePool(size) => pool.set_max_pool_size(size),
            Action::NotifyScheduler(size) => scheduler.pool_size_changed(executor, size),
        }
    }
    pool.max_pool_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::NoScheduler;

    struct Pool(usize);
    impl TunablePool for Pool {
        fn max_pool_size(&self) -> usize {
            self.0
        }
        fn set_max_pool_size(&mut self, size: usize) {
            self.0 = size;
        }
    }

    struct RecordingScheduler(Vec<(usize, usize)>);
    impl SchedulerNotifier for RecordingScheduler {
        fn pool_size_changed(&mut self, executor: usize, new_size: usize) {
            self.0.push((executor, new_size));
        }
    }

    #[test]
    fn ascend_plans_resize_and_notify() {
        let plan = Planner::new().plan(Analysis::Ascend { next: 16 }, 8);
        assert_eq!(
            plan.actions,
            vec![Action::ResizePool(16), Action::NotifyScheduler(16)]
        );
        assert!(!plan.terminal);
        assert_eq!(plan.target_size(), Some(16));
    }

    #[test]
    fn rollback_is_terminal() {
        let plan = Planner::new().plan(Analysis::Rollback { to: 4 }, 8);
        assert!(plan.terminal);
        assert_eq!(plan.target_size(), Some(4));
    }

    #[test]
    fn settle_at_max_changes_nothing() {
        let plan = Planner::new().plan(Analysis::SettleAtMax, 32);
        assert!(plan.actions.is_empty());
        assert!(plan.terminal);
        assert_eq!(plan.target_size(), None);
    }

    #[test]
    fn noop_resize_elided() {
        let plan = Planner::new().plan(Analysis::Ascend { next: 8 }, 8);
        assert!(plan.actions.is_empty());
    }

    #[test]
    fn apply_plan_updates_pool_and_scheduler() {
        let mut pool = Pool(32);
        let mut sched = RecordingScheduler(Vec::new());
        let plan = Planner::new().plan(Analysis::Rollback { to: 8 }, 32);
        let size = apply_plan(&plan, 3, &mut pool, &mut sched);
        assert_eq!(size, 8);
        assert_eq!(pool.0, 8);
        assert_eq!(sched.0, vec![(3, 8)]);
    }

    #[test]
    fn apply_empty_plan_is_noop() {
        let mut pool = Pool(32);
        let size = apply_plan(&Plan::default(), 0, &mut pool, &mut NoScheduler);
        assert_eq!(size, 32);
    }
}
