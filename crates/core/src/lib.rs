//! Self-adaptive executors: the primary contribution of the paper
//! *Self-adaptive Executors for Big Data Processing* (Middleware '19).
//!
//! Spark-style executors run tasks on a thread pool sized, by default, to
//! the number of virtual cores — an implicit assumption that work is
//! uniformly CPU-bound. This crate provides the two remedies the paper
//! develops, both backend-agnostic (they drive the simulated engine in
//! `sae-dag` and the real OS-thread pool in `sae-pool` through the same
//! traits):
//!
//! * **Static solution** (§4, [`StaticPolicy`]) — stages whose operators
//!   read or write storage are marked I/O and run with a user-chosen thread
//!   count; all other stages keep the default.
//! * **Dynamic solution** (§5, [`AdaptiveController`]) — a per-executor
//!   MAPE-K feedback loop:
//!   - [`Monitor`] accumulates epoll-wait time `ε` and I/O throughput `µ`
//!     over intervals of `j` task completions,
//!   - [`HillClimbAnalyzer`] minimises the congestion index `ζ = ε / µ`,
//!     doubling the thread count from `c_min` until `ζ` worsens, then
//!     rolling back,
//!   - [`Planner`] turns decisions into an action sequence that keeps the
//!     pool *and* the driver's scheduler view consistent,
//!   - the effector ([`apply_plan`]) resizes any [`TunablePool`] and
//!     notifies any [`SchedulerNotifier`].
//!
//! [`ThreadPolicy`] packages default / static / best-fit / adaptive
//! behaviour behind one type that the engine consumes.
//!
//! # Examples
//!
//! Drive the controller with synthetic measurements: contention grows with
//! the pool size, so the controller climbs, observes worse congestion, and
//! rolls back:
//!
//! ```
//! use sae_core::{AdaptiveController, MapeConfig};
//!
//! let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
//! let mut threads = ctl.stage_started(0.0, Some(1000));
//! assert_eq!(threads, 2);
//!
//! let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
//! for _ in 0..200 {
//!     now += 1.0;
//!     // Each task moves 100 MB and waits on I/O; the wait grows
//!     // superlinearly in the thread count (contention).
//!     epoll += 0.5 + 0.01 * (threads as f64).powi(2);
//!     bytes += 100.0;
//!     if let Some(decision) = ctl.task_finished(now, epoll, bytes) {
//!         threads = decision;
//!     }
//! }
//! // Settled on a bounded, non-default value.
//! assert!(ctl.settled());
//! assert!(threads >= 2 && threads < 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod congestion;
mod controller;
mod journal;
mod monitor;
mod planner;
mod policy;
mod traits;

pub use analyzer::{Analysis, ClimbDirection, CongestionSignal, HillClimbAnalyzer};
pub use congestion::{congestion_index, IntervalMeasurement};
pub use controller::{AdaptiveController, MapeConfig};
pub use journal::{
    parse_jsonl, to_jsonl, zeta_explain, DecisionAction, DecisionJournal, DecisionRecord,
};
pub use monitor::{IntervalReport, Monitor, ProbeSnapshot};
pub use planner::{apply_plan, Action, Plan, Planner};
pub use policy::{BestFitTable, StageInfo, StageKind, StaticPolicy, ThreadPolicy};
pub use traits::{NoScheduler, SchedulerNotifier, TunablePool};
