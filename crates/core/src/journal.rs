//! The MAPE-K decision journal: one structured record per monitoring
//! interval `I_j`, explaining *why* the Analyzer doubled, rolled back, or
//! held.
//!
//! The paper argues for self-adaptive executors by correlating epoll wait
//! `ε_j`, throughput `µ_j`, and congestion `ζ_j` with pool-size decisions
//! (Figures 1, 5, 9). The journal is that correlation as a first-class
//! artifact: the controller emits a [`DecisionRecord`] whenever it closes
//! an interval or abandons a stage, with the same schema in the simulator
//! (virtual time) and the live TCP runtime (wall clock). Records serialize
//! to JSONL with a hand-rolled writer and parser ([`DecisionRecord::to_json`],
//! [`parse_jsonl`]) — the serialization is deterministic, so a same-seed
//! sim rerun produces a bit-identical journal.
//!
//! [`zeta_explain`] renders a journal as a human-readable hill-climb table.

use std::fmt;
use std::sync::{Arc, Mutex};

/// What the Planner did with the interval's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionAction {
    /// Keep climbing: the pool doubles (or jumps to `c_max` on low-I/O
    /// evidence) for the next interval.
    Ascend,
    /// The climb regressed: the pool returns to the previous size and the
    /// controller stops adjusting for the stage. Terminal.
    RollBack,
    /// No further change this stage — the climb settled at a boundary, the
    /// stage was too short to adapt, or it ended mid-climb. Terminal.
    Hold,
    /// The interval overlapped a detected fault (a task failed, an
    /// executor was lost, work is being redistributed): its measurements
    /// were discarded and the interval restarted at the same thread count,
    /// so ζ comparisons only ever see clean intervals. Not terminal — the
    /// climb continues from the restarted interval.
    Poisoned,
}

impl DecisionAction {
    /// Whether this action ends adaptation for the stage.
    pub fn is_terminal(self) -> bool {
        !matches!(self, DecisionAction::Ascend | DecisionAction::Poisoned)
    }

    /// Stable lower-case name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionAction::Ascend => "ascend",
            DecisionAction::RollBack => "rollback",
            DecisionAction::Hold => "hold",
            DecisionAction::Poisoned => "poisoned",
        }
    }

    /// Parses the name produced by [`DecisionAction::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ascend" => Some(DecisionAction::Ascend),
            "rollback" => Some(DecisionAction::RollBack),
            "hold" => Some(DecisionAction::Hold),
            "poisoned" => Some(DecisionAction::Poisoned),
            _ => None,
        }
    }
}

impl fmt::Display for DecisionAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal entry: what the controller measured over interval `I_j` and
/// what it decided.
///
/// Time (`at`) is seconds since the job epoch — virtual seconds in the
/// simulator, wall seconds in the live runtime; both clocks start at 0 when
/// the job starts, which is what lets `live_vs_sim` overlay the two.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Adaptation episode: increments every time the controller sees a
    /// stage start. Matches the engine's stage index on an executor that
    /// was present for every stage; a mid-job re-registration starts a
    /// fresh episode.
    pub stage: usize,
    /// Executor the controller belongs to.
    pub executor: usize,
    /// Zero-based interval index `j` within the episode.
    pub interval: usize,
    /// Seconds since the job epoch when the decision was made.
    pub at: f64,
    /// Thread count the interval ran with.
    pub threads: usize,
    /// Accumulated epoll-wait seconds `ε_j` over the interval.
    pub epoll_wait_s: f64,
    /// I/O throughput `µ_j` over the interval, in bytes per second.
    pub throughput_bps: f64,
    /// Congestion index `ζ_j = ε_j / µ_j` (µ in MB/s, as in the paper).
    pub zeta: f64,
    /// Pool size in effect while the interval ran.
    pub pool_before: usize,
    /// Pool size after the decision took effect.
    pub pool_after: usize,
    /// The planner's verdict.
    pub action: DecisionAction,
    /// Human-readable explanation of the verdict.
    pub rationale: String,
}

/// Formats an `f64` for the JSONL encoding: shortest round-trip form.
///
/// Non-finite values cannot appear in JSON; the controller never produces
/// them (`congestion_index` guards the µ→0 division), so they are mapped
/// to `0` defensively.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl DecisionRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"stage\":{},\"executor\":{},\"interval\":{},\"at\":{},",
                "\"threads\":{},\"epoll_wait_s\":{},\"throughput_bps\":{},",
                "\"zeta\":{},\"pool_before\":{},\"pool_after\":{},",
                "\"action\":\"{}\",\"rationale\":\"{}\"}}"
            ),
            self.stage,
            self.executor,
            self.interval,
            fmt_f64(self.at),
            self.threads,
            fmt_f64(self.epoll_wait_s),
            fmt_f64(self.throughput_bps),
            fmt_f64(self.zeta),
            self.pool_before,
            self.pool_after,
            self.action.as_str(),
            escape_json(&self.rationale),
        )
    }

    /// Parses a record from the JSON produced by
    /// [`DecisionRecord::to_json`] (a single flat object; key order does
    /// not matter).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let mut p = JsonParser::new(line);
        p.expect('{')?;
        let mut stage = None;
        let mut executor = None;
        let mut interval = None;
        let mut at = None;
        let mut threads = None;
        let mut epoll_wait_s = None;
        let mut throughput_bps = None;
        let mut zeta = None;
        let mut pool_before = None;
        let mut pool_after = None;
        let mut action = None;
        let mut rationale = None;
        loop {
            p.skip_ws();
            if p.try_consume('}') {
                break;
            }
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "stage" => stage = Some(p.usize()?),
                "executor" => executor = Some(p.usize()?),
                "interval" => interval = Some(p.usize()?),
                "at" => at = Some(p.number()?),
                "threads" => threads = Some(p.usize()?),
                "epoll_wait_s" => epoll_wait_s = Some(p.number()?),
                "throughput_bps" => throughput_bps = Some(p.number()?),
                "zeta" => zeta = Some(p.number()?),
                "pool_before" => pool_before = Some(p.usize()?),
                "pool_after" => pool_after = Some(p.usize()?),
                "action" => {
                    let s = p.string()?;
                    action =
                        Some(DecisionAction::parse(&s).ok_or(format!("unknown action {s:?}"))?);
                }
                "rationale" => rationale = Some(p.string()?),
                other => return Err(format!("unknown key {other:?}")),
            }
            p.skip_ws();
            if !p.try_consume(',') {
                p.expect('}')?;
                break;
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err("trailing content after record".to_string());
        }
        let missing = |k: &str| format!("missing key {k:?}");
        Ok(Self {
            stage: stage.ok_or_else(|| missing("stage"))?,
            executor: executor.ok_or_else(|| missing("executor"))?,
            interval: interval.ok_or_else(|| missing("interval"))?,
            at: at.ok_or_else(|| missing("at"))?,
            threads: threads.ok_or_else(|| missing("threads"))?,
            epoll_wait_s: epoll_wait_s.ok_or_else(|| missing("epoll_wait_s"))?,
            throughput_bps: throughput_bps.ok_or_else(|| missing("throughput_bps"))?,
            zeta: zeta.ok_or_else(|| missing("zeta"))?,
            pool_before: pool_before.ok_or_else(|| missing("pool_before"))?,
            pool_after: pool_after.ok_or_else(|| missing("pool_after"))?,
            action: action.ok_or_else(|| missing("action"))?,
            rationale: rationale.ok_or_else(|| missing("rationale"))?,
        })
    }
}

/// Serializes records as JSONL: one [`DecisionRecord::to_json`] object per
/// line, each newline-terminated.
pub fn to_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL journal produced by [`to_jsonl`]; blank lines are
/// skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<DecisionRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(n, l)| DecisionRecord::from_json(l).map_err(|e| format!("line {}: {e}", n + 1)))
        .collect()
}

/// A minimal recursive-descent parser for the flat JSON objects the
/// journal emits. Deliberately not a general JSON parser: no nesting, no
/// arrays, no booleans — the schema does not need them and the workspace
/// has no JSON dependency.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn try_consume(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.try_consume(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unescaped).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn usize(&mut self) -> Result<usize, String> {
        let v = self.number()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
            Ok(v as usize)
        } else {
            Err(format!("expected unsigned integer, got {v}"))
        }
    }
}

/// A shared, appendable journal handle.
///
/// Clones share the same underlying record list (like
/// `sae_metrics::MetricRegistry`), so a controller buried inside a pool or
/// an engine can hand the journal out to whoever wants to drain or render
/// it.
#[derive(Clone, Default)]
pub struct DecisionJournal {
    records: Arc<Mutex<Vec<DecisionRecord>>>,
}

impl DecisionJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&self, record: DecisionRecord) {
        self.records.lock().expect("journal poisoned").push(record);
    }

    /// A copy of every record, in emission order.
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.records.lock().expect("journal poisoned").clone()
    }

    /// Drains the journal, returning every record emitted so far.
    pub fn take(&self) -> Vec<DecisionRecord> {
        std::mem::take(&mut *self.records.lock().expect("journal poisoned"))
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("journal poisoned").len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the current records as JSONL (see [`to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.records())
    }
}

impl fmt::Debug for DecisionJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecisionJournal")
            .field("records", &self.len())
            .finish()
    }
}

/// Renders a journal as a hill-climb explanation table — the textual
/// equivalent of the paper's Figure 5 (`ζ_j` against pool size per
/// interval).
///
/// Columns: stage, executor, interval, threads, `ε_j` (s), `µ_j` (MB/s),
/// `ζ_j`, pool transition, action, rationale.
pub fn zeta_explain(records: &[DecisionRecord]) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    let mut rows: Vec<[String; 10]> = vec![[
        "stage".into(),
        "exec".into(),
        "I_j".into(),
        "thr".into(),
        "eps_j(s)".into(),
        "mu_j(MB/s)".into(),
        "zeta_j".into(),
        "pool".into(),
        "action".into(),
        "rationale".into(),
    ]];
    for r in records {
        rows.push([
            r.stage.to_string(),
            r.executor.to_string(),
            r.interval.to_string(),
            r.threads.to_string(),
            format!("{:.3}", r.epoll_wait_s),
            format!("{:.2}", r.throughput_bps / MB),
            format!("{:.4}", r.zeta),
            format!("{}->{}", r.pool_before, r.pool_after),
            r.action.as_str().to_string(),
            r.rationale.clone(),
        ]);
    }
    let mut widths = [0usize; 10];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        for (i, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 9 {
                // Last column: no padding, rationales vary wildly in length.
                out.push_str(cell);
            } else {
                out.push_str(&format!("{cell:<w$}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(interval: usize, action: DecisionAction) -> DecisionRecord {
        DecisionRecord {
            stage: 1,
            executor: 2,
            interval,
            at: 3.25,
            threads: 2 << interval,
            epoll_wait_s: 0.5,
            throughput_bps: 104_857_600.0,
            zeta: 0.005,
            pool_before: 2 << interval,
            pool_after: 4 << interval,
            action,
            rationale: "test \"quoted\"\nnewline\tand \\backslash".to_string(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        for action in [
            DecisionAction::Ascend,
            DecisionAction::RollBack,
            DecisionAction::Hold,
        ] {
            let r = record(3, action);
            let parsed = DecisionRecord::from_json(&r.to_json()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn jsonl_round_trip_many_records() {
        let records = vec![
            record(0, DecisionAction::Ascend),
            record(1, DecisionAction::Ascend),
            record(2, DecisionAction::RollBack),
        ];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 3);
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn parser_skips_blank_lines_and_reports_bad_ones() {
        let r = record(0, DecisionAction::Hold);
        let text = format!("\n{}\n\n", r.to_json());
        assert_eq!(parse_jsonl(&text).unwrap(), vec![r]);
        let err = parse_jsonl("{\"stage\":}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn missing_key_is_an_error() {
        let mut json = record(0, DecisionAction::Hold).to_json();
        json = json.replace("\"zeta\":0.005,", "");
        let err = DecisionRecord::from_json(&json).unwrap_err();
        assert!(err.contains("zeta"), "{err}");
    }

    #[test]
    fn shortest_float_form_survives_round_trip() {
        let mut r = record(0, DecisionAction::Ascend);
        r.at = 0.1 + 0.2; // classic non-representable sum
        r.zeta = 1e-12;
        r.throughput_bps = 1.5e9;
        let parsed = DecisionRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn terminality_matches_action() {
        assert!(!DecisionAction::Ascend.is_terminal());
        assert!(DecisionAction::RollBack.is_terminal());
        assert!(DecisionAction::Hold.is_terminal());
        assert!(!DecisionAction::Poisoned.is_terminal());
    }

    #[test]
    fn poisoned_round_trips_through_json() {
        let r = record(2, DecisionAction::Poisoned);
        assert_eq!(DecisionRecord::from_json(&r.to_json()).unwrap(), r);
        assert_eq!(
            DecisionAction::parse("poisoned"),
            Some(DecisionAction::Poisoned)
        );
    }

    #[test]
    fn journal_handle_is_shared_between_clones() {
        let journal = DecisionJournal::new();
        let clone = journal.clone();
        clone.push(record(0, DecisionAction::Ascend));
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.take().len(), 1);
        assert!(clone.is_empty());
    }

    #[test]
    fn zeta_explain_renders_aligned_table() {
        // Controller rationales are single-line; the multi-line fixture
        // rationale only exercises the JSON escapes.
        let mut a = record(0, DecisionAction::Ascend);
        let mut b = record(1, DecisionAction::RollBack);
        a.rationale = "climb".to_string();
        b.rationale = "regressed".to_string();
        let table = zeta_explain(&[a, b]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("zeta_j"));
        assert!(lines[1].contains("ascend"));
        assert!(lines[2].contains("rollback"));
        // Columns align: "ascend" and "rollback" start at the same offset.
        let col = lines[1].find("ascend").unwrap();
        assert_eq!(lines[2].find("rollback").unwrap(), col);
    }

    #[test]
    fn action_parse_inverts_as_str() {
        for a in [
            DecisionAction::Ascend,
            DecisionAction::RollBack,
            DecisionAction::Hold,
        ] {
            assert_eq!(DecisionAction::parse(a.as_str()), Some(a));
        }
        assert_eq!(DecisionAction::parse("explode"), None);
    }
}
