//! The [M]onitor of the MAPE-K loop (§5.1).

use crate::congestion::{congestion_index, IntervalMeasurement};

/// Cumulative sensor readings since stage start, as sampled at one instant.
///
/// `epoll_wait` and `io_bytes` are the paper's two primary metrics; the
/// `disk_busy` seconds enable the alternative disk-utilisation signal the
/// paper evaluates and rejects (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeSnapshot {
    /// Seconds spent blocked on I/O since stage start.
    pub epoll_wait: f64,
    /// MB of task I/O since stage start.
    pub io_bytes: f64,
    /// Seconds the local disk was busy since stage start.
    pub disk_busy: f64,
}

impl ProbeSnapshot {
    /// A snapshot carrying only the paper's two primary counters.
    pub fn basic(epoll_wait: f64, io_bytes: f64) -> Self {
        Self {
            epoll_wait,
            io_bytes,
            disk_busy: 0.0,
        }
    }
}

/// Everything the monitor learned about one completed interval `I_j`.
///
/// These reports are the knowledge base entries; the bench harness reads
/// them back to reproduce Figure 7 (ε, µ and ζ per thread count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalReport {
    /// Thread count `j` the interval ran with.
    pub threads: usize,
    /// Accumulated epoll-wait seconds `ε_j`.
    pub epoll_wait: f64,
    /// Bytes moved in MB.
    pub bytes: f64,
    /// Interval duration in seconds.
    pub duration: f64,
    /// I/O throughput `µ_j` in MB/s.
    pub throughput: f64,
    /// Congestion index `ζ_j = ε_j / µ_j`.
    pub zeta: f64,
    /// Average disk utilisation over the interval, in `[0, 1]` (0 when the
    /// probe does not supply disk-busy seconds).
    pub disk_util: f64,
}

/// Senses the managed thread pool over intervals of `j` task completions.
///
/// The monitor consumes *cumulative* counters (a [`ProbeSnapshot`] since
/// stage start), which is how both the simulated executor and
/// `/proc`-style sources naturally report, and differences them per
/// interval. An interval `I_j` ends once `j` tasks have completed while
/// the pool size is `j` (§5.1: "the interval for 16 threads starts by
/// setting the thread pool size to 16 ... finishes as soon as they are all
/// complete").
///
/// # Examples
///
/// ```
/// use sae_core::{Monitor, ProbeSnapshot};
///
/// let mut mon = Monitor::new();
/// mon.begin_interval(2, 0.0, ProbeSnapshot::default());
/// assert!(mon.task_finished(1.0, ProbeSnapshot::basic(0.5, 100.0)).is_none());
/// let report = mon.task_finished(2.0, ProbeSnapshot::basic(1.0, 200.0)).unwrap();
/// assert_eq!(report.threads, 2);
/// assert!((report.throughput - 100.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    current: Option<IntervalState>,
}

#[derive(Debug, Clone)]
struct IntervalState {
    threads: usize,
    started_at: f64,
    start: ProbeSnapshot,
    tasks_done: usize,
}

impl Monitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts interval `I_threads` at time `now`, given the current
    /// cumulative counters.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn begin_interval(&mut self, threads: usize, now: f64, snapshot: ProbeSnapshot) {
        assert!(threads > 0, "interval thread count must be positive");
        self.current = Some(IntervalState {
            threads,
            started_at: now,
            start: snapshot,
            tasks_done: 0,
        });
    }

    /// Records a task completion; returns the finished interval's report
    /// once `threads` tasks have completed.
    ///
    /// Returns `None` while the interval is still filling, or when no
    /// interval is active (monitoring disabled after the analyzer settles).
    pub fn task_finished(&mut self, now: f64, snapshot: ProbeSnapshot) -> Option<IntervalReport> {
        let state = self.current.as_mut()?;
        state.tasks_done += 1;
        if state.tasks_done < state.threads {
            return None;
        }
        let state = self.current.take().expect("state present");
        let duration = (now - state.started_at).max(0.0);
        let measurement = IntervalMeasurement {
            epoll_wait: (snapshot.epoll_wait - state.start.epoll_wait).max(0.0),
            bytes: (snapshot.io_bytes - state.start.io_bytes).max(0.0),
            duration,
        };
        let disk_util = if duration > 0.0 {
            ((snapshot.disk_busy - state.start.disk_busy).max(0.0) / duration).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Some(IntervalReport {
            threads: state.threads,
            epoll_wait: measurement.epoll_wait,
            bytes: measurement.bytes,
            duration: measurement.duration,
            throughput: measurement.throughput(),
            zeta: congestion_index(&measurement),
            disk_util,
        })
    }

    /// Whether an interval is currently being measured.
    pub fn is_active(&self) -> bool {
        self.current.is_some()
    }

    /// Stops monitoring (e.g. after the analyzer settles for the stage).
    pub fn stop(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_requires_j_completions() {
        let mut mon = Monitor::new();
        mon.begin_interval(4, 0.0, ProbeSnapshot::default());
        for i in 1..4 {
            assert!(mon
                .task_finished(i as f64, ProbeSnapshot::default())
                .is_none());
        }
        assert!(mon.task_finished(4.0, ProbeSnapshot::default()).is_some());
    }

    #[test]
    fn report_differences_cumulative_counters() {
        let mut mon = Monitor::new();
        mon.begin_interval(1, 10.0, ProbeSnapshot::basic(5.0, 1000.0));
        let r = mon
            .task_finished(12.0, ProbeSnapshot::basic(6.5, 1400.0))
            .unwrap();
        assert!((r.epoll_wait - 1.5).abs() < 1e-12);
        assert!((r.bytes - 400.0).abs() < 1e-12);
        assert!((r.duration - 2.0).abs() < 1e-12);
        assert!((r.throughput - 200.0).abs() < 1e-12);
        assert!((r.zeta - 1.5 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn disk_util_from_busy_seconds() {
        let mut mon = Monitor::new();
        mon.begin_interval(
            1,
            0.0,
            ProbeSnapshot {
                epoll_wait: 0.0,
                io_bytes: 0.0,
                disk_busy: 10.0,
            },
        );
        let r = mon
            .task_finished(
                4.0,
                ProbeSnapshot {
                    epoll_wait: 1.0,
                    io_bytes: 100.0,
                    disk_busy: 13.0,
                },
            )
            .unwrap();
        assert!((r.disk_util - 0.75).abs() < 1e-12);
    }

    #[test]
    fn inactive_monitor_ignores_completions() {
        let mut mon = Monitor::new();
        assert!(mon.task_finished(1.0, ProbeSnapshot::default()).is_none());
    }

    #[test]
    fn interval_consumed_after_report() {
        let mut mon = Monitor::new();
        mon.begin_interval(1, 0.0, ProbeSnapshot::default());
        assert!(mon.task_finished(1.0, ProbeSnapshot::default()).is_some());
        assert!(!mon.is_active());
        assert!(mon.task_finished(2.0, ProbeSnapshot::default()).is_none());
    }

    #[test]
    fn stop_discards_interval() {
        let mut mon = Monitor::new();
        mon.begin_interval(2, 0.0, ProbeSnapshot::default());
        mon.stop();
        assert!(mon.task_finished(1.0, ProbeSnapshot::default()).is_none());
    }

    #[test]
    fn counter_regression_clamped_to_zero() {
        // Defensive: a probe reset mid-interval must not produce negative ε.
        let mut mon = Monitor::new();
        mon.begin_interval(1, 0.0, ProbeSnapshot::basic(100.0, 100.0));
        let r = mon
            .task_finished(1.0, ProbeSnapshot::basic(50.0, 50.0))
            .unwrap();
        assert_eq!(r.epoll_wait, 0.0);
        assert_eq!(r.bytes, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_thread_interval_rejected() {
        let mut mon = Monitor::new();
        mon.begin_interval(0, 0.0, ProbeSnapshot::default());
    }
}
