//! Thread policies: default, static (§4), best-fit oracle, adaptive (§5).

use std::collections::BTreeMap;

use crate::controller::MapeConfig;

/// Structural classification of a stage, inferred from its operators.
///
/// The static solution marks a stage I/O if any of its operators reads
/// from or writes to storage (`textFile`, `saveAsTextFile`, ...),
/// regardless of size — which is precisely its limitation L2/L3: shuffle
/// stages spill to disk without being marked, and small reads are marked
/// without mattering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// The stage contains explicit storage read/write operators.
    Io,
    /// No structural evidence of storage I/O (may still shuffle/spill!).
    Generic,
}

/// What a policy gets to know about a stage before it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInfo {
    /// Stage index within the job.
    pub stage_id: usize,
    /// Structural classification.
    pub kind: StageKind,
}

/// The static solution's configuration: one thread count for all I/O
/// stages (limitation L1: it cannot differentiate between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPolicy {
    /// Thread count used in stages classified [`StageKind::Io`].
    pub io_threads: usize,
}

impl StaticPolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `io_threads` is zero.
    pub fn new(io_threads: usize) -> Self {
        assert!(io_threads > 0, "io_threads must be positive");
        Self { io_threads }
    }
}

/// A per-stage thread-count table: the "static BestFit" oracle of the
/// evaluation, derived by sweeping each stage offline (Figures 2, 4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BestFitTable {
    threads_by_stage: BTreeMap<usize, usize>,
}

impl BestFitTable {
    /// Creates an empty table (all stages fall back to the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count for a stage.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set(&mut self, stage_id: usize, threads: usize) {
        assert!(threads > 0, "thread count must be positive");
        self.threads_by_stage.insert(stage_id, threads);
    }

    /// The thread count for `stage_id`, if the table has one.
    pub fn get(&self, stage_id: usize) -> Option<usize> {
        self.threads_by_stage.get(&stage_id).copied()
    }

    /// Number of stages with explicit entries.
    pub fn len(&self) -> usize {
        self.threads_by_stage.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.threads_by_stage.is_empty()
    }
}

impl FromIterator<(usize, usize)> for BestFitTable {
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let mut table = Self::new();
        for (stage, threads) in iter {
            table.set(stage, threads);
        }
        table
    }
}

/// How executors size their thread pools: the four configurations the
/// paper evaluates against each other (Figure 8).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ThreadPolicy {
    /// Default Spark: one thread per virtual core in every stage.
    #[default]
    Default,
    /// The static solution: `io_threads` for I/O stages, default elsewhere.
    Static(StaticPolicy),
    /// The hypothetical per-stage optimum derived from sweeps.
    BestFit(BestFitTable),
    /// The self-adaptive MAPE-K controller.
    Adaptive(MapeConfig),
}

impl ThreadPolicy {
    /// The *initial* thread count for a stage, given the node's core count.
    ///
    /// For [`ThreadPolicy::Adaptive`] this is only the starting point
    /// (`c_min`, or `c_max` for stages below the adaptation threshold given
    /// `task_hint`); the controller adjusts from there at runtime.
    pub fn initial_threads(
        &self,
        stage: StageInfo,
        cores: usize,
        task_hint: Option<usize>,
    ) -> usize {
        match self {
            ThreadPolicy::Default => cores,
            ThreadPolicy::Static(policy) => match stage.kind {
                StageKind::Io => policy.io_threads.min(cores),
                StageKind::Generic => cores,
            },
            ThreadPolicy::BestFit(table) => table.get(stage.stage_id).unwrap_or(cores).min(cores),
            ThreadPolicy::Adaptive(cfg) => {
                if task_hint.is_some_and(|t| t < cfg.min_stage_tasks) {
                    cfg.c_max.min(cores)
                } else {
                    cfg.c_min
                }
            }
        }
    }

    /// Whether this policy adapts at runtime.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, ThreadPolicy::Adaptive(_))
    }

    /// A short stable name for reports ("default", "static", ...).
    pub fn name(&self) -> &'static str {
        match self {
            ThreadPolicy::Default => "default",
            ThreadPolicy::Static(_) => "static",
            ThreadPolicy::BestFit(_) => "static-bestfit",
            ThreadPolicy::Adaptive(_) => "dynamic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_stage(id: usize) -> StageInfo {
        StageInfo {
            stage_id: id,
            kind: StageKind::Io,
        }
    }

    fn generic_stage(id: usize) -> StageInfo {
        StageInfo {
            stage_id: id,
            kind: StageKind::Generic,
        }
    }

    #[test]
    fn default_policy_uses_all_cores() {
        let p = ThreadPolicy::Default;
        assert_eq!(p.initial_threads(io_stage(0), 32, None), 32);
        assert_eq!(p.initial_threads(generic_stage(1), 32, None), 32);
    }

    #[test]
    fn static_policy_only_touches_io_stages() {
        let p = ThreadPolicy::Static(StaticPolicy::new(8));
        assert_eq!(p.initial_threads(io_stage(0), 32, None), 8);
        assert_eq!(p.initial_threads(generic_stage(1), 32, None), 32);
    }

    #[test]
    fn static_policy_clamped_to_cores() {
        let p = ThreadPolicy::Static(StaticPolicy::new(64));
        assert_eq!(p.initial_threads(io_stage(0), 32, None), 32);
    }

    #[test]
    fn bestfit_uses_table_with_default_fallback() {
        let table: BestFitTable = [(0, 4), (2, 8)].into_iter().collect();
        let p = ThreadPolicy::BestFit(table);
        assert_eq!(p.initial_threads(io_stage(0), 32, None), 4);
        assert_eq!(p.initial_threads(generic_stage(1), 32, None), 32);
        assert_eq!(p.initial_threads(io_stage(2), 32, None), 8);
    }

    #[test]
    fn adaptive_starts_at_c_min_or_skips_short_stages() {
        let p = ThreadPolicy::Adaptive(MapeConfig::new(2, 32));
        assert_eq!(p.initial_threads(io_stage(0), 32, Some(100)), 2);
        assert_eq!(p.initial_threads(io_stage(0), 32, None), 2);
        assert_eq!(p.initial_threads(io_stage(0), 32, Some(2)), 32);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ThreadPolicy::Default.name(), "default");
        assert_eq!(ThreadPolicy::Static(StaticPolicy::new(8)).name(), "static");
        assert_eq!(
            ThreadPolicy::BestFit(BestFitTable::new()).name(),
            "static-bestfit"
        );
        assert_eq!(
            ThreadPolicy::Adaptive(MapeConfig::new(2, 32)).name(),
            "dynamic"
        );
    }

    #[test]
    fn bestfit_table_bookkeeping() {
        let mut t = BestFitTable::new();
        assert!(t.is_empty());
        t.set(1, 16);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(16));
        assert_eq!(t.get(9), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_io_threads_rejected() {
        let _ = StaticPolicy::new(0);
    }
}
