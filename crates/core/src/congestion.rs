//! The congestion index `ζ = ε / µ` (Equation 1 of the paper).

/// Raw measurements for one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMeasurement {
    /// Accumulated epoll-wait time `ε` in seconds: time threads spent
    /// blocked waiting for I/O readiness (disk or network).
    pub epoll_wait: f64,
    /// Bytes moved during the interval, in MB (disk + shuffle traffic).
    pub bytes: f64,
    /// Interval length in seconds.
    pub duration: f64,
}

impl IntervalMeasurement {
    /// I/O throughput `µ` over the interval in MB/s.
    ///
    /// Returns `0.0` for a zero-length interval.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.bytes / self.duration
        }
    }
}

/// Computes the congestion index `ζ = ε / µ`.
///
/// Two boundary conventions, chosen so the hill climber behaves sensibly
/// on non-I/O stages (limitation L3 of the static solution):
///
/// * No I/O at all (`µ ≈ 0`): the index is `0.0` — there is no congestion
///   evidence, so the analyzer keeps ascending toward the CPU-friendly
///   maximum.
/// * Negative inputs are rejected.
///
/// # Examples
///
/// ```
/// use sae_core::{congestion_index, IntervalMeasurement};
///
/// let m = IntervalMeasurement { epoll_wait: 30.0, bytes: 1500.0, duration: 10.0 };
/// // µ = 150 MB/s, ζ = 30 / 150 = 0.2
/// assert!((congestion_index(&m) - 0.2).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any measurement is negative or NaN.
pub fn congestion_index(m: &IntervalMeasurement) -> f64 {
    assert!(
        m.epoll_wait >= 0.0 && m.bytes >= 0.0 && m.duration >= 0.0,
        "measurements must be non-negative: {m:?}"
    );
    const MIN_THROUGHPUT: f64 = 1e-6; // MB/s; below this the stage did no I/O
    let mu = m.throughput();
    if mu < MIN_THROUGHPUT {
        0.0
    } else {
        m.epoll_wait / mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(epoll: f64, bytes: f64, dur: f64) -> IntervalMeasurement {
        IntervalMeasurement {
            epoll_wait: epoll,
            bytes,
            duration: dur,
        }
    }

    #[test]
    fn matches_paper_formula() {
        let meas = m(100.0, 2000.0, 10.0); // µ = 200
        assert!((congestion_index(&meas) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_io_means_zero_congestion() {
        assert_eq!(congestion_index(&m(5.0, 0.0, 10.0)), 0.0);
    }

    #[test]
    fn zero_duration_means_zero_congestion() {
        assert_eq!(congestion_index(&m(0.0, 100.0, 0.0)), 0.0);
    }

    #[test]
    fn higher_wait_same_throughput_is_worse() {
        let low = congestion_index(&m(10.0, 1000.0, 10.0));
        let high = congestion_index(&m(50.0, 1000.0, 10.0));
        assert!(high > low);
    }

    #[test]
    fn higher_throughput_same_wait_is_better() {
        let slow = congestion_index(&m(10.0, 500.0, 10.0));
        let fast = congestion_index(&m(10.0, 5000.0, 10.0));
        assert!(fast < slow);
    }

    #[test]
    fn throughput_computation() {
        assert_eq!(m(0.0, 300.0, 3.0).throughput(), 100.0);
        assert_eq!(m(0.0, 300.0, 0.0).throughput(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wait_rejected() {
        let _ = congestion_index(&m(-1.0, 1.0, 1.0));
    }
}
