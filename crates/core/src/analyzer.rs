//! The [A]nalyzer of the MAPE-K loop: hill climbing on `ζ` (§5.2).

use crate::monitor::IntervalReport;

/// Which way the hill climb traverses the thread-count space.
///
/// The paper ascends from `c_min` and argues against descending (§5.2):
/// halving from the top strands already-assigned tasks in queues, and when
/// the maximum is bad, starting there "can significantly affect the
/// runtime". Both directions are implemented so the claim is testable —
/// see `benches/ablations.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClimbDirection {
    /// Start at `c_min` and double while improving (the paper's choice).
    #[default]
    Ascend,
    /// Start at `c_max` and halve while improving.
    Descend,
}

/// The sensed quantity the analyzer optimises.
///
/// The paper picks the congestion index over average disk utilisation for
/// two reasons (§5.2): utilisation saturates ("all core numbers achieve
/// 91.13 % disk utilization or higher ... difficult to find out which
/// configuration has indeed performed better") and it says nothing about
/// network I/O. Both signals are implemented so the comparison is
/// measurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionSignal {
    /// Minimise `ζ = ε / µ` (the paper's choice).
    #[default]
    ZetaIndex,
    /// Maximise average disk utilisation.
    DiskUtilization,
}

impl CongestionSignal {
    /// Converts an interval report into a lower-is-better score.
    pub fn score(self, report: &IntervalReport) -> f64 {
        match self {
            CongestionSignal::ZetaIndex => report.zeta,
            CongestionSignal::DiskUtilization => 1.0 - report.disk_util,
        }
    }
}

/// The analyzer's verdict after an interval completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// The new setting improved (or is the first sample): try `next`
    /// threads, continue exploring.
    Ascend {
        /// Thread count for the next interval.
        next: usize,
    },
    /// The new setting performed worse: roll back to `to` threads and stop
    /// adjusting for the remainder of the stage.
    Rollback {
        /// Thread count to return to.
        to: usize,
    },
    /// Reached the traversal boundary (`c_max` when ascending, `c_min`
    /// when descending) while still improving: stay there and stop
    /// adjusting.
    SettleAtMax,
}

/// Hill-climbing over thread counts, ascending from `c_min` by doubling.
///
/// The paper ascends rather than descends for two reasons (§5.2): halving
/// from the top strands already-assigned tasks in queues, and a bad maximal
/// setting is much more expensive to sit in than a bad minimal one. The
/// climb compares each interval's congestion index `ζ_j` against the
/// previous interval's `ζ_{j/2}` and rolls back on regression.
///
/// # Examples
///
/// ```
/// use sae_core::{Analysis, HillClimbAnalyzer, IntervalReport};
///
/// let mut analyzer = HillClimbAnalyzer::new(2, 32);
/// let report = |threads: usize, zeta: f64| IntervalReport {
///     threads, epoll_wait: zeta, bytes: 100.0, duration: 1.0,
///     throughput: 100.0, zeta, disk_util: 0.9,
/// };
/// assert_eq!(analyzer.analyze(&report(2, 0.10)), Analysis::Ascend { next: 4 });
/// assert_eq!(analyzer.analyze(&report(4, 0.05)), Analysis::Ascend { next: 8 });
/// // 8 threads congests more than 4 did: roll back and hold.
/// assert_eq!(analyzer.analyze(&report(8, 0.20)), Analysis::Rollback { to: 4 });
/// ```
#[derive(Debug, Clone)]
pub struct HillClimbAnalyzer {
    c_min: usize,
    c_max: usize,
    tolerance: f64,
    direction: ClimbDirection,
    signal: CongestionSignal,
    previous: Option<(usize, f64)>,
    settled: bool,
}

impl HillClimbAnalyzer {
    /// Creates an analyzer exploring `[c_min, c_max]` with strict
    /// comparisons (zero tolerance).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= c_min <= c_max`.
    pub fn new(c_min: usize, c_max: usize) -> Self {
        assert!(
            c_min >= 1 && c_min <= c_max,
            "need 1 <= c_min <= c_max, got [{c_min}, {c_max}]"
        );
        Self {
            c_min,
            c_max,
            tolerance: 0.0,
            direction: ClimbDirection::Ascend,
            signal: CongestionSignal::ZetaIndex,
            previous: None,
            settled: false,
        }
    }

    /// Sets the climb direction (default: ascend, the paper's choice).
    pub fn with_direction(mut self, direction: ClimbDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the optimised signal (default: the congestion index ζ).
    pub fn with_signal(mut self, signal: CongestionSignal) -> Self {
        self.signal = signal;
        self
    }

    /// The thread count exploration starts from under this direction.
    pub fn start_point(&self) -> usize {
        match self.direction {
            ClimbDirection::Ascend => self.c_min,
            ClimbDirection::Descend => self.c_max,
        }
    }

    /// The next candidate after an improvement at `threads`, or `None` at
    /// the boundary (terminal).
    fn next_candidate(&self, threads: usize) -> Option<usize> {
        match self.direction {
            ClimbDirection::Ascend => (threads < self.c_max).then(|| (threads * 2).min(self.c_max)),
            ClimbDirection::Descend => {
                (threads > self.c_min).then(|| (threads / 2).max(self.c_min))
            }
        }
    }

    /// Sets the regression tolerance: an interval only counts as *worse*
    /// when `ζ_j > ζ_{j/2} · (1 + tolerance)`.
    ///
    /// A flat congestion index means the extra threads did not hurt I/O —
    /// on CPU-bound stages ζ barely moves with the pool size, and rolling
    /// back on measurement noise would strand such stages at `c_min`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or NaN.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance >= 0.0,
            "tolerance must be non-negative, got {tolerance}"
        );
        self.tolerance = tolerance;
        self
    }

    /// The lower exploration bound.
    pub fn c_min(&self) -> usize {
        self.c_min
    }

    /// The upper exploration bound.
    pub fn c_max(&self) -> usize {
        self.c_max
    }

    /// Whether the climb has terminated for this stage.
    pub fn settled(&self) -> bool {
        self.settled
    }

    /// The `(threads, score)` pair the next interval will be compared
    /// against, if any interval has been accepted this stage. Exposed so
    /// the controller can phrase its decision rationale in terms of the
    /// actual comparison.
    pub fn previous(&self) -> Option<(usize, f64)> {
        self.previous
    }

    /// Resets the climb for a new stage.
    pub fn reset(&mut self) {
        self.previous = None;
        self.settled = false;
    }

    /// Analyzes a completed interval, comparing the configured signal's
    /// score against the previous interval and deciding the next move.
    ///
    /// # Panics
    ///
    /// Panics if called after the analyzer settled (callers must stop
    /// monitoring on `Rollback`/`SettleAtMax`), or if the report's thread
    /// count is outside `[c_min, c_max]`.
    pub fn analyze(&mut self, report: &IntervalReport) -> Analysis {
        assert!(!self.settled, "analyzer already settled for this stage");
        assert!(
            report.threads >= self.c_min && report.threads <= self.c_max,
            "interval thread count {} outside [{}, {}]",
            report.threads,
            self.c_min,
            self.c_max
        );
        let score = self.signal.score(report);
        let improved = match self.previous {
            None => true,
            Some((_, prev_score)) => score <= prev_score * (1.0 + self.tolerance),
        };
        if !improved {
            let (prev_threads, _) = self.previous.expect("regression implies a previous");
            self.settled = true;
            return Analysis::Rollback { to: prev_threads };
        }
        match self.next_candidate(report.threads) {
            Some(next) => {
                self.previous = Some((report.threads, score));
                Analysis::Ascend { next }
            }
            None => {
                self.settled = true;
                Analysis::SettleAtMax
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(threads: usize, zeta: f64) -> IntervalReport {
        IntervalReport {
            threads,
            epoll_wait: zeta,
            bytes: 100.0,
            duration: 1.0,
            throughput: 100.0,
            zeta,
            disk_util: 0.5,
        }
    }

    #[test]
    fn descend_halves_from_c_max_and_rolls_back_upward() {
        let mut a = HillClimbAnalyzer::new(2, 32).with_direction(ClimbDirection::Descend);
        assert_eq!(a.start_point(), 32);
        assert_eq!(a.analyze(&report(32, 0.9)), Analysis::Ascend { next: 16 });
        assert_eq!(a.analyze(&report(16, 0.5)), Analysis::Ascend { next: 8 });
        // 8 is worse than 16: roll back up and settle.
        assert_eq!(a.analyze(&report(8, 0.8)), Analysis::Rollback { to: 16 });
        assert!(a.settled());
    }

    #[test]
    fn descend_settles_at_c_min_when_always_improving() {
        let mut a = HillClimbAnalyzer::new(2, 8).with_direction(ClimbDirection::Descend);
        assert_eq!(a.analyze(&report(8, 0.9)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&report(4, 0.5)), Analysis::Ascend { next: 2 });
        assert_eq!(a.analyze(&report(2, 0.1)), Analysis::SettleAtMax);
        assert!(a.settled());
    }

    #[test]
    fn disk_util_signal_maximises_utilisation() {
        let mut a = HillClimbAnalyzer::new(2, 32).with_signal(CongestionSignal::DiskUtilization);
        let with_util = |threads: usize, util: f64| IntervalReport {
            disk_util: util,
            ..report(threads, 1.0)
        };
        // Rising utilisation: keep climbing.
        assert_eq!(a.analyze(&with_util(2, 0.60)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&with_util(4, 0.90)), Analysis::Ascend { next: 8 });
        // Utilisation drops: roll back.
        assert_eq!(a.analyze(&with_util(8, 0.70)), Analysis::Rollback { to: 4 });
    }

    #[test]
    fn first_interval_always_ascends() {
        let mut a = HillClimbAnalyzer::new(2, 32);
        assert_eq!(a.analyze(&report(2, 99.0)), Analysis::Ascend { next: 4 });
    }

    #[test]
    fn climbs_while_improving_then_rolls_back() {
        let mut a = HillClimbAnalyzer::new(2, 32);
        assert_eq!(a.analyze(&report(2, 0.5)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&report(4, 0.3)), Analysis::Ascend { next: 8 });
        assert_eq!(a.analyze(&report(8, 0.4)), Analysis::Rollback { to: 4 });
        assert!(a.settled());
    }

    #[test]
    fn monotone_improvement_settles_at_max() {
        let mut a = HillClimbAnalyzer::new(2, 8);
        assert_eq!(a.analyze(&report(2, 0.9)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&report(4, 0.5)), Analysis::Ascend { next: 8 });
        assert_eq!(a.analyze(&report(8, 0.1)), Analysis::SettleAtMax);
        assert!(a.settled());
    }

    #[test]
    fn doubling_clamps_to_c_max() {
        let mut a = HillClimbAnalyzer::new(2, 6);
        assert_eq!(a.analyze(&report(2, 0.5)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&report(4, 0.3)), Analysis::Ascend { next: 6 });
    }

    #[test]
    fn equal_zeta_keeps_climbing() {
        // The paper rolls back on *lower* performance; a tie means the
        // extra threads did not hurt I/O, so the climb continues.
        let mut a = HillClimbAnalyzer::new(2, 32);
        a.analyze(&report(2, 0.5));
        assert_eq!(a.analyze(&report(4, 0.5)), Analysis::Ascend { next: 8 });
    }

    #[test]
    fn zero_congestion_climbs_to_max() {
        // CPU-bound stage: ζ stays ~0 everywhere, so the climb runs to the
        // top and settles there.
        let mut a = HillClimbAnalyzer::new(2, 8);
        assert_eq!(a.analyze(&report(2, 0.0)), Analysis::Ascend { next: 4 });
        assert_eq!(a.analyze(&report(4, 0.0)), Analysis::Ascend { next: 8 });
        assert_eq!(a.analyze(&report(8, 0.0)), Analysis::SettleAtMax);
    }

    #[test]
    fn tolerance_absorbs_small_regressions() {
        let mut a = HillClimbAnalyzer::new(2, 32).with_tolerance(0.10);
        a.analyze(&report(2, 1.00));
        // +8% is within the 10% band: keep climbing.
        assert_eq!(a.analyze(&report(4, 1.08)), Analysis::Ascend { next: 8 });
        // +30% is a real regression: roll back.
        assert_eq!(a.analyze(&report(8, 1.40)), Analysis::Rollback { to: 4 });
    }

    #[test]
    fn reset_allows_new_stage() {
        let mut a = HillClimbAnalyzer::new(2, 32);
        a.analyze(&report(2, 0.5));
        a.analyze(&report(4, 0.9));
        assert!(a.settled());
        a.reset();
        assert!(!a.settled());
        assert_eq!(a.analyze(&report(2, 0.5)), Analysis::Ascend { next: 4 });
    }

    #[test]
    #[should_panic(expected = "settled")]
    fn analyzing_after_settle_panics() {
        let mut a = HillClimbAnalyzer::new(2, 4);
        a.analyze(&report(2, 0.5));
        a.analyze(&report(4, 0.9));
        a.analyze(&report(2, 0.1));
    }

    #[test]
    #[should_panic(expected = "c_min")]
    fn invalid_bounds_rejected() {
        let _ = HillClimbAnalyzer::new(8, 4);
    }
}
