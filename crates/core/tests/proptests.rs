//! Property-based tests for the MAPE-K controller.

use proptest::prelude::*;
use sae_core::{
    AdaptiveController, HillClimbAnalyzer, IntervalReport, MapeConfig, Monitor, ProbeSnapshot,
};

fn report(threads: usize, zeta: f64) -> IntervalReport {
    IntervalReport {
        threads,
        epoll_wait: zeta * 100.0,
        bytes: 1000.0,
        duration: 10.0,
        throughput: 100.0,
        zeta,
        disk_util: 0.5,
    }
}

proptest! {
    /// The hill climber always terminates within log2(c_max/c_min) + 1
    /// intervals and never leaves its bounds, for any ζ sequence.
    #[test]
    fn climb_terminates_and_stays_bounded(zetas in prop::collection::vec(0.0f64..10.0, 1..20)) {
        let (c_min, c_max) = (2usize, 32);
        let mut analyzer = HillClimbAnalyzer::new(c_min, c_max);
        let mut threads = c_min;
        let mut steps = 0;
        for &zeta in &zetas {
            if analyzer.settled() {
                break;
            }
            steps += 1;
            match analyzer.analyze(&report(threads, zeta)) {
                sae_core::Analysis::Ascend { next } => {
                    prop_assert!(next > threads);
                    prop_assert!(next <= c_max);
                    threads = next;
                }
                sae_core::Analysis::Rollback { to } => {
                    prop_assert!(to >= c_min && to < threads);
                    threads = to;
                }
                sae_core::Analysis::SettleAtMax => {
                    prop_assert_eq!(threads, c_max);
                }
            }
            prop_assert!((c_min..=c_max).contains(&threads));
        }
        prop_assert!(steps <= 5, "2->4->8->16->32 is the longest climb");
    }

    /// Monitor interval accounting: ε and bytes are exactly the difference
    /// of the cumulative counters; duration is the time span.
    #[test]
    fn monitor_differences_are_exact(
        threads in 1usize..16,
        start_epoll in 0.0f64..100.0,
        start_bytes in 0.0f64..10_000.0,
        d_epoll in 0.0f64..50.0,
        d_bytes in 0.0f64..5_000.0,
        duration in 0.001f64..100.0,
    ) {
        let mut monitor = Monitor::new();
        monitor.begin_interval(threads, 0.0, ProbeSnapshot::basic(start_epoll, start_bytes));
        let mut out = None;
        for i in 1..=threads {
            let frac = i as f64 / threads as f64;
            out = monitor.task_finished(
                duration * frac,
                ProbeSnapshot::basic(start_epoll + d_epoll * frac, start_bytes + d_bytes * frac),
            );
        }
        let r = out.expect("interval must complete after `threads` tasks");
        prop_assert!((r.epoll_wait - d_epoll).abs() < 1e-9);
        prop_assert!((r.bytes - d_bytes).abs() < 1e-9);
        prop_assert!((r.duration - duration).abs() < 1e-9);
    }

    /// The full controller never produces a decision outside
    /// `[c_min, c_max]` and never issues a decision after settling, for
    /// arbitrary (monotone) probe traces.
    #[test]
    fn controller_decisions_bounded(
        waits in prop::collection::vec(0.0f64..5.0, 20..200),
        mbs in prop::collection::vec(0.0f64..500.0, 20..200),
    ) {
        let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
        let n = waits.len().min(mbs.len());
        let mut threads = ctl.stage_started(0.0, Some(n));
        prop_assert!(threads == 2 || threads == 32);
        let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
        let mut settled_at = None;
        for i in 0..n {
            now += 1.0;
            epoll += waits[i];
            bytes += mbs[i];
            if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                prop_assert!(settled_at.is_none(), "decision after settling");
                prop_assert!((2..=32).contains(&next));
                threads = next;
            }
            if ctl.settled() && settled_at.is_none() {
                settled_at = Some(i);
            }
        }
        prop_assert!((2..=32).contains(&threads));
    }

    /// Identical probe traces produce identical decision sequences.
    #[test]
    fn controller_is_deterministic(
        waits in prop::collection::vec(0.0f64..5.0, 20..100),
    ) {
        let run = || {
            let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
            let mut decisions = vec![ctl.stage_started(0.0, Some(waits.len()))];
            let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
            for &w in &waits {
                now += 1.0;
                epoll += w;
                bytes += 100.0;
                if let Some(d) = ctl.task_finished(now, epoll, bytes) {
                    decisions.push(d);
                }
            }
            decisions
        };
        prop_assert_eq!(run(), run());
    }
}
