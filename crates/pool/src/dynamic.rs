//! The dynamic thread pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sae_core::TunablePool;
use sae_metrics::{Counter, Gauge, Histogram, MetricRegistry};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time statistics of a [`DynamicThreadPool`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMetrics {
    /// Tasks accepted via [`DynamicThreadPool::submit`].
    pub submitted: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks that panicked (contained, the worker survived).
    pub panicked: u64,
    /// Panic payload messages, in completion order (`"<non-string panic>"`
    /// when the payload was not a string).
    pub panic_messages: Vec<String>,
    /// Current maximum pool size.
    pub max_size: usize,
    /// Workers currently alive (may briefly exceed `max_size` right after
    /// a shrink, until surplus workers retire).
    pub live_workers: usize,
    /// Workers currently executing a task.
    pub busy_workers: usize,
}

struct Shared {
    queue_rx: Receiver<Job>,
    max_size: AtomicUsize,
    live_workers: AtomicUsize,
    busy_workers: AtomicUsize,
    shutting_down: AtomicBool,
    submitted: Counter,
    completed: Counter,
    panicked: Counter,
    panic_messages: Mutex<Vec<String>>,
    queue_depth: Gauge,
    exec_seconds: Histogram,
}

impl Shared {
    /// Whether this worker should retire because the pool shrank.
    fn should_retire(&self) -> bool {
        loop {
            let live = self.live_workers.load(Ordering::Acquire);
            let max = self.max_size.load(Ordering::Acquire);
            if live <= max {
                return false;
            }
            if self
                .live_workers
                .compare_exchange(live, live - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// A thread pool whose maximum size can be adjusted while running.
///
/// Cloning the handle is cheap and shares the pool. Dropping the last
/// handle without calling [`DynamicThreadPool::shutdown`] detaches the
/// workers (they exit once the queue closes and drains).
///
/// See the [crate docs](crate) for an example.
#[derive(Clone)]
pub struct DynamicThreadPool {
    shared: Arc<Shared>,
    queue_tx: Sender<Job>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for DynamicThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics();
        f.debug_struct("DynamicThreadPool")
            .field("max_size", &m.max_size)
            .field("live_workers", &m.live_workers)
            .field("busy_workers", &m.busy_workers)
            .finish()
    }
}

impl DynamicThreadPool {
    /// Creates a pool with `max_size` workers, spawned eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(max_size: usize) -> Self {
        Self::with_registry(max_size, &MetricRegistry::new())
    }

    /// Like [`DynamicThreadPool::new`], publishing metrics into `registry`
    /// under the `pool.*` namespace.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn with_registry(max_size: usize, registry: &MetricRegistry) -> Self {
        assert!(max_size > 0, "pool size must be positive");
        let (queue_tx, queue_rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            queue_rx,
            max_size: AtomicUsize::new(max_size),
            live_workers: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            submitted: registry.counter("pool.tasks_submitted"),
            completed: registry.counter("pool.tasks_completed"),
            panicked: registry.counter("pool.tasks_panicked"),
            panic_messages: Mutex::new(Vec::new()),
            queue_depth: registry.gauge("pool.queue_depth"),
            exec_seconds: registry.histogram("pool.exec_seconds"),
        });
        let pool = Self {
            shared,
            queue_tx,
            handles: Arc::new(Mutex::new(Vec::new())),
        };
        pool.spawn_up_to_max();
        pool
    }

    fn spawn_up_to_max(&self) {
        loop {
            let live = self.shared.live_workers.load(Ordering::Acquire);
            let max = self.shared.max_size.load(Ordering::Acquire);
            if live >= max || self.shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            if self
                .shared
                .live_workers
                .compare_exchange(live, live + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("sae-pool-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
            self.handles.lock().push(handle);
        }
    }

    /// Submits a task for execution.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        assert!(
            !self.shared.shutting_down.load(Ordering::Acquire),
            "submit on a shut-down pool"
        );
        self.shared.submitted.inc();
        self.shared.queue_depth.adjust(1.0);
        self.queue_tx
            .send(Box::new(job))
            .expect("queue closed while pool is alive");
    }

    /// Current statistics.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            submitted: self.shared.submitted.value(),
            completed: self.shared.completed.value(),
            panicked: self.shared.panicked.value(),
            panic_messages: self.shared.panic_messages.lock().clone(),
            max_size: self.shared.max_size.load(Ordering::Acquire),
            live_workers: self.shared.live_workers.load(Ordering::Acquire),
            busy_workers: self.shared.busy_workers.load(Ordering::Acquire),
        }
    }

    /// Drains the queue and joins all workers. Idempotent.
    ///
    /// Already-queued tasks still run; new submissions are rejected.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl TunablePool for DynamicThreadPool {
    fn max_pool_size(&self) -> usize {
        self.shared.max_size.load(Ordering::Acquire)
    }

    /// Adjusts the maximum worker count.
    ///
    /// Growth spawns workers immediately; shrink lets running tasks finish
    /// and retires surplus workers as they become idle — matching the
    /// semantics the paper relies on ("running tasks are never aborted").
    fn set_max_pool_size(&mut self, size: usize) {
        assert!(size > 0, "pool size must be positive");
        self.shared.max_size.store(size, Ordering::Release);
        self.spawn_up_to_max();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    use crossbeam::channel::RecvTimeoutError;
    loop {
        if shared.should_retire() {
            return;
        }
        match shared
            .queue_rx
            .recv_timeout(std::time::Duration::from_millis(20))
        {
            Ok(job) => {
                shared.queue_depth.adjust(-1.0);
                run_job(&shared, job);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::Acquire) && shared.queue_rx.is_empty() {
                    shared.live_workers.fetch_sub(1, Ordering::AcqRel);
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // All pool handles dropped.
                shared.live_workers.fetch_sub(1, Ordering::AcqRel);
                return;
            }
        }
    }
}

fn run_job(shared: &Shared, job: Job) {
    shared.busy_workers.fetch_add(1, Ordering::AcqRel);
    let start = std::time::Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(job));
    shared.exec_seconds.record(start.elapsed().as_secs_f64());
    shared.busy_workers.fetch_sub(1, Ordering::AcqRel);
    match outcome {
        Ok(()) => shared.completed.inc(),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_owned());
            shared.panic_messages.lock().push(message);
            shared.panicked.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_all_submitted_tasks() {
        let pool = DynamicThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn concurrency_never_exceeds_max() {
        let pool = DynamicThreadPool::new(3);
        let current = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..60 {
            let current = Arc::clone(&current);
            let peak = Arc::clone(&peak);
            pool.submit(move || {
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                current.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?}");
    }

    #[test]
    fn grow_takes_effect_immediately() {
        let mut pool = DynamicThreadPool::new(1);
        pool.set_max_pool_size(8);
        assert_eq!(pool.max_pool_size(), 8);
        // Eight long tasks should overlap now.
        let current = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let current = Arc::clone(&current);
            let peak = Arc::clone(&peak);
            pool.submit(move || {
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                current.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert!(peak.load(Ordering::SeqCst) >= 2, "growth had no effect");
    }

    #[test]
    fn shrink_is_cooperative() {
        let mut pool = DynamicThreadPool::new(8);
        let current = Arc::new(AtomicUsize::new(0));
        let peak_after = Arc::new(AtomicUsize::new(0));
        // Saturate, then shrink, then measure peak of a second batch.
        for _ in 0..16 {
            let current = Arc::clone(&current);
            pool.submit(move || {
                current.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                current.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.set_max_pool_size(2);
        // Wait for the first batch to drain and surplus workers to retire.
        std::thread::sleep(Duration::from_millis(100));
        for _ in 0..20 {
            let current = Arc::clone(&current);
            let peak_after = Arc::clone(&peak_after);
            pool.submit(move || {
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak_after.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                current.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert!(
            peak_after.load(Ordering::SeqCst) <= 2,
            "shrink not respected: {peak_after:?}"
        );
    }

    #[test]
    fn panicking_task_is_contained() {
        let pool = DynamicThreadPool::new(2);
        pool.submit(|| panic!("boom"));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 10);
        let m = pool.metrics();
        assert_eq!(m.panicked, 1);
        assert_eq!(m.completed, 10);
        assert_eq!(m.panic_messages, vec!["boom".to_owned()]);
    }

    #[test]
    fn formatted_panic_payloads_are_captured() {
        let pool = DynamicThreadPool::new(1);
        pool.submit(|| panic!("task {} failed", 7));
        pool.submit(|| std::panic::panic_any(42_u32));
        pool.shutdown();
        let m = pool.metrics();
        assert_eq!(m.panicked, 2);
        assert!(m.panic_messages.contains(&"task 7 failed".to_owned()));
        assert!(m.panic_messages.contains(&"<non-string panic>".to_owned()));
    }

    #[test]
    fn resize_racing_panics_keeps_pool_alive_and_bounded() {
        const MIN: usize = 2;
        const MAX: usize = 8;
        let mut pool = DynamicThreadPool::new(MAX);
        // Interleave panicking and sleeping tasks with rapid resizes.
        for round in 0..30 {
            for k in 0..4 {
                if (round + k) % 3 == 0 {
                    pool.submit(move || panic!("chaos {round}:{k}"));
                } else {
                    pool.submit(|| std::thread::sleep(Duration::from_millis(1)));
                }
            }
            let size = if round % 2 == 0 { MIN } else { MAX };
            pool.set_max_pool_size(size);
            assert!((MIN..=MAX).contains(&pool.max_pool_size()));
        }
        pool.set_max_pool_size(MIN);
        // Let surplus workers retire, then prove the pool still executes.
        std::thread::sleep(Duration::from_millis(100));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 20, "pool died under chaos");
        let m = pool.metrics();
        assert!(m.panicked > 0, "no panics were injected");
        assert_eq!(m.panicked as usize, m.panic_messages.len());
        assert!(
            m.live_workers <= MAX,
            "live workers {} above max",
            m.live_workers
        );
        assert_eq!(m.completed + m.panicked, m.submitted);
    }

    #[test]
    fn metrics_reflect_activity() {
        let registry = MetricRegistry::new();
        let pool = DynamicThreadPool::with_registry(2, &registry);
        for _ in 0..5 {
            pool.submit(|| {});
        }
        pool.shutdown();
        let m = pool.metrics();
        assert_eq!(m.submitted, 5);
        assert_eq!(m.completed, 5);
        assert_eq!(registry.counter("pool.tasks_completed").value(), 5);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool = DynamicThreadPool::new(2);
        pool.submit(|| {});
        pool.shutdown();
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = DynamicThreadPool::new(0);
    }
}
