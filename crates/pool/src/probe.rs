//! Shared I/O probe helpers: one code path for examples, tests, and the
//! live runtime.
//!
//! An [`IoProbe`](crate::IoProbe) hands the MAPE-K monitor cumulative
//! `(epoll_wait_seconds, io_megabytes)` counters. Two sources exist in
//! practice:
//!
//! * **Explicit accounting** ([`CounterProbe`]) — tasks that know exactly
//!   how many bytes they moved and how long they blocked record both
//!   directly. This is the per-executor source: several live executors
//!   share one OS process, so process-global counters cannot attribute
//!   I/O to one pool, but the tasks themselves can.
//! * **Kernel accounting** ([`crate::procfs::StageIoProbe`]) — the
//!   process-wide `/proc` counters, rebased per stage and clamped so a
//!   counter observed going backwards never yields negative ε or µ.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::adaptive::IoProbe;

/// Microsecond-resolution cumulative I/O accounting fed by the tasks
/// themselves.
///
/// Cloning shares the counters; [`CounterProbe::as_probe`] adapts the
/// counters to the [`IoProbe`](crate::IoProbe) shape the
/// [`AdaptivePool`](crate::AdaptivePool) consumes.
///
/// # Examples
///
/// ```
/// use sae_pool::CounterProbe;
/// use std::time::Duration;
///
/// let probe = CounterProbe::new();
/// probe.record(3 * 1024 * 1024, Duration::from_millis(5));
/// let (wait, mb) = probe.sample();
/// assert!((mb - 3.0).abs() < 1e-9);
/// assert!((wait - 0.005).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterProbe {
    inner: Arc<CounterProbeInner>,
}

#[derive(Debug, Default)]
struct CounterProbeInner {
    bytes: AtomicU64,
    wait_micros: AtomicU64,
}

impl CounterProbe {
    /// Creates a probe with both counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one task's I/O: `bytes` moved while blocked for `waited`.
    pub fn record(&self, bytes: u64, waited: Duration) {
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner
            .wait_micros
            .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
    }

    /// Resets both counters to zero (stage boundary).
    pub fn reset(&self) {
        self.inner.bytes.store(0, Ordering::Relaxed);
        self.inner.wait_micros.store(0, Ordering::Relaxed);
    }

    /// Current cumulative `(wait_seconds, megabytes)`.
    pub fn sample(&self) -> (f64, f64) {
        let bytes = self.inner.bytes.load(Ordering::Relaxed) as f64;
        let micros = self.inner.wait_micros.load(Ordering::Relaxed) as f64;
        (micros / 1e6, bytes / (1024.0 * 1024.0))
    }

    /// Adapts the counters to the closure shape the adaptive pool expects.
    pub fn as_probe(&self) -> IoProbe {
        let this = self.clone();
        Arc::new(move || this.sample())
    }
}

/// Sums two probes — e.g. explicit task accounting plus the kernel's
/// block-I/O delay, which catches waits the tasks did not time themselves.
pub fn combined_probe(a: IoProbe, b: IoProbe) -> IoProbe {
    Arc::new(move || {
        let (wa, ma) = a();
        let (wb, mb) = b();
        (wa + wb, ma + mb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(CounterProbe::new().sample(), (0.0, 0.0));
    }

    #[test]
    fn accumulates_and_resets() {
        let p = CounterProbe::new();
        p.record(1024 * 1024, Duration::from_millis(2));
        p.record(1024 * 1024, Duration::from_millis(3));
        let (wait, mb) = p.sample();
        assert!((mb - 2.0).abs() < 1e-9);
        assert!((wait - 0.005).abs() < 1e-9);
        p.reset();
        assert_eq!(p.sample(), (0.0, 0.0));
    }

    #[test]
    fn clones_share_counters() {
        let p = CounterProbe::new();
        let q = p.clone();
        q.record(2 * 1024 * 1024, Duration::ZERO);
        assert!((p.sample().1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn as_probe_matches_sample() {
        let p = CounterProbe::new();
        p.record(1024 * 1024, Duration::from_secs(1));
        let probe = p.as_probe();
        assert_eq!(probe(), p.sample());
    }

    #[test]
    fn combined_probe_sums_sources() {
        let a = CounterProbe::new();
        let b = CounterProbe::new();
        a.record(1024 * 1024, Duration::from_millis(10));
        b.record(3 * 1024 * 1024, Duration::from_millis(30));
        let combo = combined_probe(a.as_probe(), b.as_probe());
        let (wait, mb) = combo();
        assert!((mb - 4.0).abs() < 1e-9);
        assert!((wait - 0.040).abs() < 1e-9);
    }
}
