//! A real I/O probe backed by Linux's `/proc/self/io`.
//!
//! The paper's monitor reads epoll-wait time via `strace` and throughput
//! via the Spark metrics system. For the real-thread pool we read the
//! kernel's per-process I/O accounting (`read_bytes`/`write_bytes`, the
//! block-device counters) and the process's aggregated I/O delay
//! (`delayacct_blkio_ticks` from `/proc/self/stat`), which is precisely
//! "time blocked waiting for I/O" — the ε the controller needs.

use std::sync::Arc;

use crate::adaptive::IoProbe;

/// Parsed counters from `/proc/<pid>/io`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcIo {
    /// Bytes fetched from the storage layer.
    pub read_bytes: u64,
    /// Bytes sent to the storage layer.
    pub write_bytes: u64,
}

impl ProcIo {
    /// Parses the `/proc/<pid>/io` format:
    ///
    /// ```text
    /// rchar: 3208531
    /// wchar: 114
    /// read_bytes: 4096
    /// write_bytes: 0
    /// ...
    /// ```
    ///
    /// Unknown lines are ignored; missing fields default to zero.
    pub fn parse(content: &str) -> Self {
        let mut io = Self::default();
        for line in content.lines() {
            let mut parts = line.split(':');
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(value) = value.trim().parse::<u64>() else {
                continue;
            };
            match key.trim() {
                "read_bytes" => io.read_bytes = value,
                "write_bytes" => io.write_bytes = value,
                _ => {}
            }
        }
        io
    }

    /// Total block-device traffic in MB.
    pub fn total_mb(&self) -> f64 {
        (self.read_bytes + self.write_bytes) as f64 / (1024.0 * 1024.0)
    }
}

/// Extracts `delayacct_blkio_ticks` (field 42) from `/proc/<pid>/stat` and
/// converts it to seconds, given the kernel tick rate.
///
/// Returns `None` if the field is missing or malformed.
pub fn parse_blkio_delay_seconds(stat_line: &str, ticks_per_second: f64) -> Option<f64> {
    // The comm field (2) may contain spaces; skip past the closing paren.
    let after_comm = stat_line.rfind(')')?;
    let rest = &stat_line[after_comm + 1..];
    // `rest` starts at field 3; delayacct_blkio_ticks is field 42.
    let ticks: f64 = rest.split_whitespace().nth(42 - 3)?.parse().ok()?;
    Some(ticks / ticks_per_second)
}

/// Builds an [`IoProbe`] reading the calling process's real counters.
///
/// On non-Linux platforms (or when `/proc` is unavailable) the probe
/// returns zeros, which makes the controller treat the workload as
/// CPU-bound — a safe default.
pub fn proc_self_probe() -> IoProbe {
    Arc::new(|| {
        let io = std::fs::read_to_string("/proc/self/io")
            .map(|s| ProcIo::parse(&s))
            .unwrap_or_default();
        let epoll = std::fs::read_to_string("/proc/self/stat")
            .ok()
            .and_then(|s| parse_blkio_delay_seconds(&s, 100.0))
            .unwrap_or(0.0);
        (epoll, io.total_mb())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_IO: &str = "rchar: 3208531\nwchar: 114\nsyscr: 1141\nsyscw: 2\n\
                             read_bytes: 8388608\nwrite_bytes: 4194304\ncancelled_write_bytes: 0\n";

    #[test]
    fn parses_proc_io() {
        let io = ProcIo::parse(SAMPLE_IO);
        assert_eq!(io.read_bytes, 8_388_608);
        assert_eq!(io.write_bytes, 4_194_304);
        assert!((io.total_mb() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn tolerates_garbage_lines() {
        let io = ProcIo::parse("nonsense\nread_bytes: abc\nwrite_bytes: 42\n");
        assert_eq!(io.read_bytes, 0);
        assert_eq!(io.write_bytes, 42);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(ProcIo::parse(""), ProcIo::default());
    }

    #[test]
    fn parses_blkio_delay_with_spaced_comm() {
        // Fields 1-2 then 50 numeric fields; field 42 (blkio ticks) = 250.
        let mut fields: Vec<String> = (3..=52).map(|i| i.to_string()).collect();
        fields[42 - 3] = "250".to_owned();
        let line = format!("1234 (my proc name) {}", fields.join(" "));
        let secs = parse_blkio_delay_seconds(&line, 100.0).unwrap();
        assert!((secs - 2.5).abs() < 1e-12);
    }

    #[test]
    fn malformed_stat_returns_none() {
        assert_eq!(parse_blkio_delay_seconds("", 100.0), None);
        assert_eq!(parse_blkio_delay_seconds("1 (x) 2 3", 100.0), None);
    }

    #[test]
    fn live_probe_is_callable() {
        // On Linux this reads real counters; elsewhere it returns zeros.
        let probe = proc_self_probe();
        let (epoll, mb) = probe();
        assert!(epoll >= 0.0);
        assert!(mb >= 0.0);
    }
}
