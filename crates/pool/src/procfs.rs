//! A real I/O probe backed by Linux's `/proc/self/io`.
//!
//! The paper's monitor reads epoll-wait time via `strace` and throughput
//! via the Spark metrics system. For the real-thread pool we read the
//! kernel's per-process I/O accounting (`read_bytes`/`write_bytes`, the
//! block-device counters) and the process's aggregated I/O delay
//! (`delayacct_blkio_ticks` from `/proc/self/stat`), which is precisely
//! "time blocked waiting for I/O" — the ε the controller needs.

use std::sync::Arc;

use crate::adaptive::IoProbe;

/// Parsed counters from `/proc/<pid>/io`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcIo {
    /// Bytes fetched from the storage layer.
    pub read_bytes: u64,
    /// Bytes sent to the storage layer.
    pub write_bytes: u64,
}

impl ProcIo {
    /// Parses the `/proc/<pid>/io` format:
    ///
    /// ```text
    /// rchar: 3208531
    /// wchar: 114
    /// read_bytes: 4096
    /// write_bytes: 0
    /// ...
    /// ```
    ///
    /// Unknown lines are ignored; missing fields default to zero.
    pub fn parse(content: &str) -> Self {
        let mut io = Self::default();
        for line in content.lines() {
            let mut parts = line.split(':');
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(value) = value.trim().parse::<u64>() else {
                continue;
            };
            match key.trim() {
                "read_bytes" => io.read_bytes = value,
                "write_bytes" => io.write_bytes = value,
                _ => {}
            }
        }
        io
    }

    /// Total block-device traffic in MB.
    pub fn total_mb(&self) -> f64 {
        (self.read_bytes + self.write_bytes) as f64 / (1024.0 * 1024.0)
    }

    /// The traffic accumulated since `earlier`, clamped at zero.
    ///
    /// Kernel counters can be observed going backwards — `/proc/<pid>/io`
    /// subtracts `cancelled_write_bytes` on truncation, and a probe may be
    /// rebased across a process restart. A negative delta must not reach
    /// the controller: negative µ would flip the sign of the congestion
    /// index ζ and corrupt the hill climb, so each field saturates at zero
    /// independently.
    pub fn saturating_delta(&self, earlier: &ProcIo) -> ProcIo {
        ProcIo {
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
        }
    }
}

/// Extracts `delayacct_blkio_ticks` (field 42) from `/proc/<pid>/stat` and
/// converts it to seconds, given the kernel tick rate.
///
/// Returns `None` if the field is missing or malformed.
pub fn parse_blkio_delay_seconds(stat_line: &str, ticks_per_second: f64) -> Option<f64> {
    // The comm field (2) may contain spaces; skip past the closing paren.
    let after_comm = stat_line.rfind(')')?;
    let rest = &stat_line[after_comm + 1..];
    // `rest` starts at field 3; delayacct_blkio_ticks is field 42.
    let ticks: f64 = rest.split_whitespace().nth(42 - 3)?.parse().ok()?;
    Some(ticks / ticks_per_second)
}

/// Builds an [`IoProbe`] reading the calling process's real counters.
///
/// On non-Linux platforms (or when `/proc` is unavailable) the probe
/// returns zeros, which makes the controller treat the workload as
/// CPU-bound — a safe default.
pub fn proc_self_probe() -> IoProbe {
    Arc::new(|| {
        let io = std::fs::read_to_string("/proc/self/io")
            .map(|s| ProcIo::parse(&s))
            .unwrap_or_default();
        let epoll = std::fs::read_to_string("/proc/self/stat")
            .ok()
            .and_then(|s| parse_blkio_delay_seconds(&s, 100.0))
            .unwrap_or(0.0);
        (epoll, io.total_mb())
    })
}

/// A probe that reports counters *relative to the last stage boundary*,
/// clamped so they never run backwards.
///
/// The MAPE-K monitor expects cumulative-since-stage-start counters; the
/// kernel's are cumulative since process start and (rarely) non-monotone.
/// `StageIoProbe` rebases an inner probe at every [`StageIoProbe::rebase`]
/// call and clamps each sample at zero, so counters observed going
/// backwards can never produce negative ε or µ.
///
/// # Examples
///
/// ```
/// use sae_pool::procfs::StageIoProbe;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let ticks = Arc::new(AtomicU64::new(7));
/// let inner = {
///     let ticks = Arc::clone(&ticks);
///     Arc::new(move || {
///         let t = ticks.load(Ordering::Relaxed) as f64;
///         (t * 0.1, t * 2.0)
///     })
/// };
/// let probe = StageIoProbe::new(inner);
/// probe.rebase(); // stage boundary: everything before is forgotten
/// ticks.store(9, Ordering::Relaxed);
/// let (wait, mb) = probe.sample();
/// assert!((wait - 0.2).abs() < 1e-9);
/// assert!((mb - 4.0).abs() < 1e-9);
/// ```
#[derive(Clone)]
pub struct StageIoProbe {
    inner: IoProbe,
    base: Arc<parking_lot::Mutex<(f64, f64)>>,
}

impl std::fmt::Debug for StageIoProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let base = *self.base.lock();
        f.debug_struct("StageIoProbe").field("base", &base).finish()
    }
}

impl StageIoProbe {
    /// Wraps `inner`, with the baseline taken at construction time.
    pub fn new(inner: IoProbe) -> Self {
        let base = inner();
        Self {
            inner,
            base: Arc::new(parking_lot::Mutex::new(base)),
        }
    }

    /// Re-baselines at the current counters (call at stage start).
    pub fn rebase(&self) {
        *self.base.lock() = (self.inner)();
    }

    /// Counters accumulated since the last rebase, each clamped at zero.
    pub fn sample(&self) -> (f64, f64) {
        let (base_wait, base_mb) = *self.base.lock();
        let (wait, mb) = (self.inner)();
        ((wait - base_wait).max(0.0), (mb - base_mb).max(0.0))
    }

    /// Adapts to the closure shape [`crate::AdaptivePool`] consumes.
    pub fn as_probe(&self) -> IoProbe {
        let this = self.clone();
        Arc::new(move || this.sample())
    }
}

/// A stage-rebased, clamped probe over the calling process's real
/// `/proc` counters — the probe live executors feed their pools with.
pub fn proc_stage_probe() -> StageIoProbe {
    StageIoProbe::new(proc_self_probe())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_IO: &str = "rchar: 3208531\nwchar: 114\nsyscr: 1141\nsyscw: 2\n\
                             read_bytes: 8388608\nwrite_bytes: 4194304\ncancelled_write_bytes: 0\n";

    #[test]
    fn parses_proc_io() {
        let io = ProcIo::parse(SAMPLE_IO);
        assert_eq!(io.read_bytes, 8_388_608);
        assert_eq!(io.write_bytes, 4_194_304);
        assert!((io.total_mb() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn tolerates_garbage_lines() {
        let io = ProcIo::parse("nonsense\nread_bytes: abc\nwrite_bytes: 42\n");
        assert_eq!(io.read_bytes, 0);
        assert_eq!(io.write_bytes, 42);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(ProcIo::parse(""), ProcIo::default());
    }

    #[test]
    fn parses_blkio_delay_with_spaced_comm() {
        // Fields 1-2 then 50 numeric fields; field 42 (blkio ticks) = 250.
        let mut fields: Vec<String> = (3..=52).map(|i| i.to_string()).collect();
        fields[42 - 3] = "250".to_owned();
        let line = format!("1234 (my proc name) {}", fields.join(" "));
        let secs = parse_blkio_delay_seconds(&line, 100.0).unwrap();
        assert!((secs - 2.5).abs() < 1e-12);
    }

    #[test]
    fn malformed_stat_returns_none() {
        assert_eq!(parse_blkio_delay_seconds("", 100.0), None);
        assert_eq!(parse_blkio_delay_seconds("1 (x) 2 3", 100.0), None);
    }

    #[test]
    fn missing_fields_default_to_zero() {
        // A /proc/<pid>/io without the block-device counters (e.g. a
        // kernel built without CONFIG_TASK_IO_ACCOUNTING) parses cleanly.
        let io = ProcIo::parse("rchar: 100\nwchar: 50\nsyscr: 3\n");
        assert_eq!(io, ProcIo::default());
        // And one with only a single counter keeps the other at zero.
        let io = ProcIo::parse("write_bytes: 4096\n");
        assert_eq!(io.read_bytes, 0);
        assert_eq!(io.write_bytes, 4096);
    }

    #[test]
    fn wraparound_delta_is_clamped() {
        // Counters observed going backwards (cancelled writes, rebased
        // process) must produce a zero delta, not an underflowed huge one.
        let earlier = ProcIo {
            read_bytes: 1000,
            write_bytes: 5000,
        };
        let later = ProcIo {
            read_bytes: 1500,
            write_bytes: 4000, // went backwards
        };
        let delta = later.saturating_delta(&earlier);
        assert_eq!(delta.read_bytes, 500);
        assert_eq!(delta.write_bytes, 0);
        // Full wraparound in both fields.
        let zero = ProcIo::default().saturating_delta(&later);
        assert_eq!(zero, ProcIo::default());
    }

    #[test]
    fn stage_probe_clamps_backward_counters() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let raw = Arc::new(AtomicU64::new(100));
        let inner: IoProbe = {
            let raw = Arc::clone(&raw);
            Arc::new(move || {
                let v = raw.load(Ordering::Relaxed) as f64;
                (v * 0.01, v)
            })
        };
        let probe = StageIoProbe::new(inner);
        assert_eq!(probe.sample(), (0.0, 0.0));
        raw.store(150, Ordering::Relaxed);
        let (wait, mb) = probe.sample();
        assert!((wait - 0.5).abs() < 1e-9);
        assert!((mb - 50.0).abs() < 1e-9);
        // The source runs backwards below the baseline: clamp to zero
        // instead of reporting negative ε/µ.
        raw.store(40, Ordering::Relaxed);
        assert_eq!(probe.sample(), (0.0, 0.0));
        // Rebasing at the lower value restores forward progress.
        probe.rebase();
        raw.store(90, Ordering::Relaxed);
        let (wait, mb) = probe.sample();
        assert!((wait - 0.5).abs() < 1e-9);
        assert!((mb - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stage_probe_rebase_forgets_history() {
        let probe = proc_stage_probe();
        probe.rebase();
        let (wait, mb) = probe.sample();
        // Immediately after a rebase the stage-relative counters are ~0
        // (and never negative, even if the kernel counters moved).
        assert!(wait >= 0.0);
        assert!(mb >= 0.0);
    }

    #[test]
    fn live_probe_is_callable() {
        // On Linux this reads real counters; elsewhere it returns zeros.
        let probe = proc_self_probe();
        let (epoll, mb) = probe();
        assert!(epoll >= 0.0);
        assert!(mb >= 0.0);
    }
}
