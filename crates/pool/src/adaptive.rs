//! A self-adaptive wrapper: the MAPE-K controller driving a real pool.

use std::sync::Arc;

use parking_lot::Mutex;
use sae_core::{AdaptiveController, DecisionJournal, MapeConfig, TunablePool};

use crate::dynamic::DynamicThreadPool;

/// A probe returning the cumulative `(epoll_wait_seconds, io_megabytes)`
/// observed since the current stage began.
///
/// In production this reads `/proc/<pid>/io` and aggregates socket wait
/// times; tests and examples supply synthetic probes.
pub type IoProbe = Arc<dyn Fn() -> (f64, f64) + Send + Sync>;

/// A [`DynamicThreadPool`] managed by the paper's MAPE-K controller.
///
/// Tasks submitted through the adaptive pool report their completion to
/// the monitor; whenever the analyzer decides on a new thread count, the
/// pool is resized in place — the drop-in-replacement behaviour of the
/// paper's executor, on real threads.
///
/// # Examples
///
/// ```
/// use sae_core::MapeConfig;
/// use sae_pool::AdaptivePool;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let io = Arc::new(AtomicU64::new(0));
/// let probe_io = Arc::clone(&io);
/// let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(move || {
///     let mb = probe_io.load(Ordering::Relaxed) as f64;
///     (mb * 0.001, mb) // 1 ms of wait per MB: light I/O
/// }));
/// pool.stage_started(Some(100));
/// for _ in 0..40 {
///     let io = Arc::clone(&io);
///     pool.submit(move || {
///         io.fetch_add(10, Ordering::Relaxed);
///     });
/// }
/// pool.shutdown();
/// assert!(pool.current_threads() >= 2 && pool.current_threads() <= 8);
/// ```
#[derive(Clone)]
pub struct AdaptivePool {
    pool: DynamicThreadPool,
    controller: Arc<Mutex<AdaptiveController>>,
    probe: IoProbe,
    epoch: std::time::Instant,
    /// Observer of effective pool-size changes — the live runtime's hook
    /// for emitting `PoolSizeChanged` protocol messages (§5.4).
    on_resize: Arc<Mutex<Option<ResizeHook>>>,
}

type ResizeHook = Box<dyn Fn(usize) + Send + Sync>;

impl std::fmt::Debug for AdaptivePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePool")
            .field("pool", &self.pool)
            .field("current_threads", &self.current_threads())
            .finish()
    }
}

impl AdaptivePool {
    /// Creates an adaptive pool; the worker count starts at the
    /// controller's default (`c_max`) until a stage begins.
    pub fn new(config: MapeConfig, probe: IoProbe) -> Self {
        Self::new_at(config, probe, std::time::Instant::now())
    }

    /// Like [`AdaptivePool::new`] with an explicit time epoch.
    ///
    /// Decision-journal timestamps are seconds since `epoch`; sharing one
    /// epoch across a whole live cluster (driver + executors) is what
    /// keeps the merged flight-recorder timeline clock-aligned.
    pub fn new_at(config: MapeConfig, probe: IoProbe, epoch: std::time::Instant) -> Self {
        Self {
            pool: DynamicThreadPool::new(config.c_max),
            controller: Arc::new(Mutex::new(AdaptiveController::new(config))),
            probe,
            epoch,
            on_resize: Arc::new(Mutex::new(None)),
        }
    }

    /// Tags the controller's journal records with an executor id.
    pub fn set_executor(&self, executor: usize) {
        let mut ctl = self.controller.lock();
        *ctl = ctl.clone().with_executor(executor);
    }

    /// The controller's decision journal (a shared handle: clone it and
    /// read records from anywhere).
    pub fn journal(&self) -> DecisionJournal {
        self.controller.lock().journal().clone()
    }

    /// Funnels the controller's records into `journal` — the hook a
    /// cluster uses to collect every executor's journal through handles it
    /// created up front. Call before the first stage starts.
    pub fn set_journal(&self, journal: DecisionJournal) {
        self.controller.lock().set_journal(journal);
    }

    /// Installs an observer called with the new size whenever the pool's
    /// maximum changes — at stage starts and on controller decisions.
    ///
    /// The hook runs on whichever thread effected the change (the caller
    /// of [`AdaptivePool::stage_started`], or a pool worker completing the
    /// task that closed a monitoring interval), so it must be cheap and
    /// must not call back into the pool.
    pub fn set_resize_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        *self.on_resize.lock() = Some(Box::new(hook));
    }

    fn notify_resize(on_resize: &Mutex<Option<ResizeHook>>, size: usize) {
        if let Some(hook) = on_resize.lock().as_ref() {
            hook(size);
        }
    }

    /// Signals a stage boundary; the pool resets to the exploration start.
    pub fn stage_started(&self, task_hint: Option<usize>) {
        let now = self.epoch.elapsed().as_secs_f64();
        let threads = self.controller.lock().stage_started(now, task_hint);
        let previous = self.pool.max_pool_size();
        let mut pool = self.pool.clone();
        pool.set_max_pool_size(threads);
        if threads != previous {
            Self::notify_resize(&self.on_resize, threads);
        }
    }

    /// Submits a task; its completion feeds the MAPE-K monitor.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let controller = Arc::clone(&self.controller);
        let probe = Arc::clone(&self.probe);
        let pool = self.pool.clone();
        let epoch = self.epoch;
        let on_resize = Arc::clone(&self.on_resize);
        self.pool.submit(move || {
            job();
            let (epoll, bytes) = probe();
            let now = epoch.elapsed().as_secs_f64();
            let decision = controller.lock().task_finished(now, epoll, bytes);
            if let Some(threads) = decision {
                let mut pool = pool.clone();
                pool.set_max_pool_size(threads);
                Self::notify_resize(&on_resize, threads);
            }
        });
    }

    /// Declares the current monitoring interval poisoned by a detected
    /// fault (a local task failure, a lost executor whose work is being
    /// redistributed): the controller discards the interval's measurements,
    /// journals a `Poisoned` record carrying `reason`, and restarts the
    /// interval from the probe's current reading at the same thread count.
    pub fn interval_poisoned(&self, reason: &str) {
        let (epoll, bytes) = (self.probe)();
        let now = self.epoch.elapsed().as_secs_f64();
        self.controller.lock().interval_poisoned(
            now,
            sae_core::ProbeSnapshot::basic(epoll, bytes),
            reason,
        );
    }

    /// The thread count currently in effect.
    pub fn current_threads(&self) -> usize {
        self.pool.max_pool_size()
    }

    /// Whether the controller settled for the current stage.
    pub fn settled(&self) -> bool {
        self.controller.lock().settled()
    }

    /// Number of monitoring intervals completed in the current stage.
    pub fn intervals_observed(&self) -> usize {
        self.controller.lock().history().len()
    }

    /// Drains and joins the underlying pool, then closes the controller's
    /// adaptation episode so the decision journal ends with a terminal
    /// record even when the last stage never settled.
    pub fn shutdown(&self) {
        self.pool.shutdown();
        let now = self.epoch.elapsed().as_secs_f64();
        self.controller.lock().finalize_stage(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// An I/O-heavy synthetic workload whose epoll wait grows superlinearly
    /// with the live thread count: the controller should settle below max.
    #[test]
    fn contended_workload_settles_below_max() {
        let state = Arc::new(AtomicU64::new(0));
        let probe_state = Arc::clone(&state);
        let pool = AdaptivePool::new(MapeConfig::new(2, 16), {
            Arc::new(move || {
                let v = probe_state.load(Ordering::Relaxed) as f64;
                // (epoll seconds, MB): heavy wait relative to bytes.
                (v * 0.05, v * 1.0)
            })
        });
        let busy = Arc::new(AtomicU64::new(0));
        pool.stage_started(Some(1000));
        for _ in 0..300 {
            let state = Arc::clone(&state);
            let busy = Arc::clone(&busy);
            let threads = pool.current_threads() as u64;
            pool.submit(move || {
                // More live threads -> superlinearly more "wait".
                busy.fetch_add(1, Ordering::Relaxed);
                state.fetch_add(1 + threads * threads / 8, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
                busy.fetch_sub(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert!(pool.intervals_observed() > 0 || pool.settled());
        let threads = pool.current_threads();
        assert!((2..=16).contains(&threads));
    }

    #[test]
    fn stage_boundary_resets_to_c_min() {
        let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
        assert_eq!(pool.current_threads(), 8);
        pool.stage_started(Some(100));
        assert_eq!(pool.current_threads(), 2);
        pool.shutdown();
    }

    #[test]
    fn short_stage_skips_adaptation() {
        let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
        pool.stage_started(Some(2));
        assert_eq!(pool.current_threads(), 8);
        assert!(pool.settled());
        pool.shutdown();
    }

    #[test]
    fn resize_hook_sees_stage_start_and_decisions() {
        use std::sync::Mutex as StdMutex;

        let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
        let seen: Arc<StdMutex<Vec<usize>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        pool.set_resize_hook(move |size| sink.lock().unwrap().push(size));
        // c_max -> c_min at the stage boundary fires the hook...
        pool.stage_started(Some(500));
        assert_eq!(*seen.lock().unwrap(), vec![2]);
        // ...and the CPU-bound jump to c_max fires it from a worker.
        for _ in 0..50 {
            pool.submit(|| {
                std::hint::black_box(1 + 1);
            });
        }
        pool.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.first(), Some(&2));
        assert!(seen.contains(&8), "decision not observed: {seen:?}");
    }

    #[test]
    fn journal_ends_terminal_after_shutdown() {
        let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
        pool.set_executor(5);
        pool.stage_started(Some(500));
        // Shut down mid-climb: no task ever completes an interval.
        pool.shutdown();
        let records = pool.journal().records();
        assert!(!records.is_empty());
        let last = records.last().unwrap();
        assert!(last.action.is_terminal(), "open journal: {records:?}");
        assert_eq!(last.executor, 5);
    }

    #[test]
    fn cpu_bound_workload_reaches_max() {
        // Zero I/O: the controller should end at c_max.
        let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
        pool.stage_started(Some(500));
        for _ in 0..100 {
            pool.submit(|| {
                std::hint::black_box(1 + 1);
            });
        }
        pool.shutdown();
        assert_eq!(pool.current_threads(), 8);
    }
}
