//! A real OS-thread pool with a runtime-adjustable maximum size.
//!
//! The simulated executors in `sae-dag` demonstrate the paper's results at
//! cluster scale; this crate demonstrates the *mechanism* on actual
//! threads: a work-stealing-free, bounded pool whose maximum worker count
//! can be changed while tasks are in flight — the Rust analogue of Java's
//! `ThreadPoolExecutor.setMaximumPoolSize()` that the paper's effector
//! calls (§5.4).
//!
//! * [`DynamicThreadPool`] — the pool itself. Growth takes effect
//!   immediately (new workers spawn); shrink is cooperative (running tasks
//!   finish, surplus workers retire afterwards). Panicking tasks are
//!   contained and counted.
//! * [`AdaptivePool`] — glues a [`DynamicThreadPool`] to the MAPE-K
//!   controller from `sae-core` and a caller-supplied I/O probe, making
//!   the pool self-adaptive end to end.
//!
//! # Examples
//!
//! ```
//! use sae_pool::DynamicThreadPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = DynamicThreadPool::new(4);
//! let counter = Arc::new(AtomicUsize::new(0));
//! for _ in 0..100 {
//!     let counter = Arc::clone(&counter);
//!     pool.submit(move || {
//!         counter.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.shutdown();
//! assert_eq!(counter.load(Ordering::Relaxed), 100);
//! ```

#![warn(missing_docs)]

mod adaptive;
mod dynamic;
pub mod probe;
pub mod procfs;

pub use adaptive::{AdaptivePool, IoProbe};
pub use dynamic::{DynamicThreadPool, PoolMetrics};
pub use probe::{combined_probe, CounterProbe};
