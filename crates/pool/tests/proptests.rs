//! Property-based tests for the dynamic thread pool.

use proptest::prelude::*;
use sae_core::TunablePool;
use sae_pool::DynamicThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of submissions and resizes runs every task exactly
    /// once and keeps the reported max size equal to the last resize.
    #[test]
    fn resize_sequences_preserve_task_delivery(
        ops in prop::collection::vec((1usize..16, 1usize..20), 1..12),
    ) {
        let mut pool = DynamicThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let mut submitted = 0usize;
        let mut last_size = 4;
        for (size, tasks) in ops {
            pool.set_max_pool_size(size);
            last_size = size;
            for _ in 0..tasks {
                submitted += 1;
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        prop_assert_eq!(pool.max_pool_size(), last_size);
        pool.shutdown();
        prop_assert_eq!(done.load(Ordering::Relaxed), submitted);
        let m = pool.metrics();
        prop_assert_eq!(m.completed, submitted as u64);
        prop_assert_eq!(m.panicked, 0);
    }

    /// Observed concurrency never exceeds the ceiling of all sizes used.
    #[test]
    fn concurrency_bounded_by_max_resize(sizes in prop::collection::vec(1usize..6, 1..4)) {
        let ceiling = *sizes.iter().max().unwrap();
        let mut pool = DynamicThreadPool::new(sizes[0]);
        let current = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for &size in &sizes {
            pool.set_max_pool_size(size);
            for _ in 0..12 {
                let current = Arc::clone(&current);
                let peak = Arc::clone(&peak);
                pool.submit(move || {
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(300));
                    current.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
        pool.shutdown();
        prop_assert!(peak.load(Ordering::SeqCst) <= ceiling, "peak over ceiling");
    }
}
