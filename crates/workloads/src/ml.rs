//! Machine-learning workloads: Bayes, LDA and SVM.

use sae_dag::{JobSpec, Operator, StageSpec};

/// Naive Bayes training over `input_mb` MB of documents (paper: 3.5 GiB,
/// Table 2: 2.8x I/O amplification).
///
/// Tokenisation, TF aggregation, and model write-out:
/// `1 + 2·0.55 + 2·0.30 + 0.10 = 2.8x`.
pub fn bayes(input_mb: f64) -> JobSpec {
    JobSpec::builder("bayes")
        .stage(
            StageSpec::read("tokenize", input_mb)
                .cpu_per_mb(0.20)
                .op(Operator::FlatMap)
                .shuffle_out(0.55 * input_mb),
        )
        .stage(
            StageSpec::shuffle("term-frequencies", 0.55 * input_mb)
                .cpu_per_mb(0.10)
                .op(Operator::ReduceByKey)
                .shuffle_out(0.30 * input_mb),
        )
        .stage(
            StageSpec::shuffle("train+write-model", 0.30 * input_mb)
                .cpu_per_mb(0.15)
                .write_output(0.10 * input_mb),
        )
        .build()
}

/// Latent Dirichlet Allocation over `input_mb` MB (paper: 0.63 GiB input,
/// 3.83 GiB activity — +508 %). Four Gibbs-sampling iterations shuffle the
/// topic assignments repeatedly:
/// `1 + 10·0.5 + 0.08 = 6.08x`.
pub fn lda(input_mb: f64) -> JobSpec {
    let topics = 0.5 * input_mb;
    let mut builder = JobSpec::builder("lda").stage(
        StageSpec::read("load-corpus", input_mb)
            .cpu_per_mb(0.25)
            .op(Operator::Map)
            .shuffle_out(topics),
    );
    for i in 1..=4 {
        builder = builder.stage(
            StageSpec::shuffle(&format!("gibbs-iter-{i}"), topics)
                .cpu_per_mb(0.20)
                .op(Operator::ReduceByKey)
                .shuffle_out(topics),
        );
    }
    builder
        .stage(
            StageSpec::shuffle("write-topics", topics)
                .cpu_per_mb(0.05)
                .write_output(0.08 * input_mb),
        )
        .build()
}

/// SVM training over `input_mb` MB of feature vectors (paper: 107.29 GiB,
/// Table 2: 1.9x). Gradient iterations run mostly on cached data with
/// small gradient shuffles:
/// `1 + 2·0.25 + 2·0.10 + 2·0.08 + 0.04 = 1.9x`.
pub fn svm(input_mb: f64) -> JobSpec {
    JobSpec::builder("svm")
        .stage(
            StageSpec::read("load+cache", input_mb)
                .cpu_per_mb(0.06)
                .op(Operator::Cache)
                .shuffle_out(0.25 * input_mb),
        )
        .stage(
            StageSpec::shuffle("gradient-1", 0.25 * input_mb)
                .cpu_per_mb(0.35)
                .op(Operator::ReduceByKey)
                .shuffle_out(0.10 * input_mb),
        )
        .stage(
            StageSpec::shuffle("gradient-2", 0.10 * input_mb)
                .cpu_per_mb(0.35)
                .op(Operator::ReduceByKey)
                .shuffle_out(0.08 * input_mb),
        )
        .stage(
            StageSpec::shuffle("write-model", 0.08 * input_mb)
                .cpu_per_mb(0.05)
                .write_output(0.04 * input_mb),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_core::StageKind;

    #[test]
    fn bayes_structure() {
        let job = bayes(1000.0);
        assert_eq!(job.stages.len(), 3);
        assert_eq!(job.stages[0].kind(), StageKind::Io);
        assert_eq!(job.stages[1].kind(), StageKind::Generic);
    }

    #[test]
    fn lda_has_four_iterations() {
        let job = lda(1000.0);
        assert_eq!(job.stages.len(), 6);
        let iters = job
            .stages
            .iter()
            .filter(|s| s.name.starts_with("gibbs-iter"))
            .count();
        assert_eq!(iters, 4);
    }

    #[test]
    fn lda_iterations_conserve_shuffle_volume() {
        let job = lda(1000.0);
        for window in job.stages.windows(2) {
            if window[1].shuffle_in_mb > 0.0 {
                assert_eq!(window[0].shuffle_out_mb, window[1].shuffle_in_mb);
            }
        }
    }

    #[test]
    fn svm_shuffles_shrink() {
        let job = svm(1000.0);
        assert!(job.stages[1].shuffle_out_mb < job.stages[1].shuffle_in_mb);
        assert!(job.stages[2].shuffle_out_mb < job.stages[2].shuffle_in_mb);
    }

    #[test]
    fn svm_output_is_small_model() {
        let job = svm(1000.0);
        assert!(job.stages.last().unwrap().output_mb < 0.1 * 1000.0);
    }
}
