//! SQL workloads: Aggregation and Join.

use sae_dag::{JobSpec, Operator, StageSpec};

/// SQL Aggregation over `input_mb` MB (paper: 17.87 GiB, "bigdata" size).
///
/// Two stages. Stage 0 reads the fact table and pre-aggregates — it is
/// structurally I/O *and* compute-heavy (Figure 1: 46 % CPU), which is why
/// the static solution cannot improve it (Figure 4a: the default thread
/// count wins in the read stage) while the dynamic solution still tunes
/// the write stage (Figure 8c: 32/128 in stage 1, 6.83 % total gain).
///
/// Modelled amplification: `1 + 2·0.33 + 0.435 = 2.1x` (Table 2:
/// 37.44 / 17.87).
pub fn aggregation(input_mb: f64) -> JobSpec {
    let partials = 0.33 * input_mb;
    JobSpec::builder("aggregation")
        .stage(
            // Hive splits the fact table into many small input splits, so
            // the scan stage has far more tasks than HDFS blocks — which is
            // what lets the adaptive executors converge cheaply (the climb
            // costs ~62 task completions per executor).
            StageSpec::read("scan+partial-agg", input_mb)
                .cpu_per_mb(0.35)
                .op(Operator::AggregateByKey)
                .with_tasks(1280)
                .shuffle_out(partials),
        )
        .stage(
            StageSpec::shuffle("merge+write", partials)
                .cpu_per_mb(0.06)
                .hive_output(0.435 * input_mb),
        )
        .build()
}

/// SQL Join of two tables totalling `input_mb` MB (paper: 17.87 GiB).
///
/// Three stages: the scan of both tables dominates and is the most
/// CPU-intensive stage in the whole evaluation (Figure 1: 68 % CPU —
/// predicate evaluation and hashing), followed by the join shuffle and a
/// small result write. Join barely amplifies I/O (Table 2: +18 %), which
/// is why neither solution gains much (Figure 8d: 2.54 %).
///
/// Modelled amplification: `1 + 2·0.05 + 2·0.03 + 0.019 = 1.18x`.
pub fn join(input_mb: f64) -> JobSpec {
    let hashed = 0.05 * input_mb;
    let joined = 0.03 * input_mb;
    JobSpec::builder("join")
        .stage(
            StageSpec::read("scan-tables", input_mb)
                .cpu_per_mb(0.60)
                .op(Operator::Filter)
                .with_tasks(2560)
                .shuffle_out(hashed),
        )
        .stage(
            StageSpec::shuffle("join", hashed)
                .cpu_per_mb(0.10)
                .op(Operator::Join)
                .shuffle_out(joined),
        )
        .stage(
            StageSpec::shuffle("write-result", joined)
                .cpu_per_mb(0.03)
                .hive_output(0.019 * input_mb),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_core::StageKind;

    #[test]
    fn aggregation_read_stage_is_cpu_heavy() {
        let job = aggregation(1000.0);
        assert!(job.stages[0].cpu_per_mb >= 0.1);
        assert!(job.stages[0].cpu_per_mb > 3.0 * job.stages[1].cpu_per_mb);
    }

    #[test]
    fn join_scan_is_cpu_heaviest() {
        let join = join(1000.0);
        let agg = aggregation(1000.0);
        assert!(join.stages[0].cpu_per_mb > agg.stages[0].cpu_per_mb);
    }

    #[test]
    fn only_scan_stage_is_structurally_io() {
        // The write goes through the Hive insert path, invisible to the
        // RDD-level tagger — so static tuning only reaches stage 0.
        for job in [aggregation(1000.0), join(1000.0)] {
            assert_eq!(job.stages.first().unwrap().kind(), StageKind::Io);
            assert_eq!(job.stages.last().unwrap().kind(), StageKind::Generic);
            assert!(job.stages.last().unwrap().output_mb > 0.0);
        }
    }

    #[test]
    fn join_amplifies_little() {
        let job = join(1000.0);
        let io: f64 = job
            .stages
            .iter()
            .map(|s| s.read_mb + s.shuffle_in_mb + s.shuffle_out_mb + s.output_mb)
            .sum();
        assert!(io / 1000.0 < 1.3, "join amplification {io}");
    }

    #[test]
    fn aggregation_output_smaller_than_input() {
        let job = aggregation(1000.0);
        assert!(job.stages[1].output_mb < 1000.0);
    }
}
