//! Web-search and graph workloads: PageRank and NWeight.

use sae_dag::{JobSpec, Operator, StageSpec};

/// PageRank over `input_mb` MB of edge lists (paper: 18.56 GiB,
/// "gigantic" HiBench size).
///
/// Six stages matching Figure 8b: data ingestion, four rank-propagation
/// iterations (pure shuffle — *not* structurally I/O, limitation L2: "the
/// shuffle stages in PageRank (stages 1 to 4) read 65.5 GB and write
/// 59.4 GB"), and the final rank write-out.
///
/// CPU intensity falls across iterations (Figure 1 shows 61/54/73/15/6/3 %
/// CPU): early iterations deserialise and join the full graph, later ones
/// touch converged, shrinking frontiers.
///
/// Modelled amplification: `1 + 0.62 + 4·(0.35 + 2·0.62) + 0.62 + 0.12 =
/// 8.7x` (Table 2 measures 6.9x; the iteration volumes are weighted up to
/// match the paper's stage-time composition — stages 1–4 read 65.5 GB and
/// write 59.4 GB, and iterations also re-read memory-spilled cache).
pub fn pagerank(input_mb: f64) -> JobSpec {
    let iter = 0.62 * input_mb;
    let cache_spill = 0.35 * input_mb;
    JobSpec::builder("pagerank")
        .stage(
            StageSpec::read("ingest", input_mb)
                .cpu_per_mb(0.10)
                .op(Operator::Map)
                .with_tasks(640)
                .shuffle_out(iter),
        )
        .stage(
            StageSpec::shuffle("iter-1", iter)
                .cache_spill_read(cache_spill)
                .cpu_per_mb(0.060)
                .op(Operator::Join)
                .shuffle_out(iter),
        )
        .stage(
            StageSpec::shuffle("iter-2", iter)
                .cache_spill_read(cache_spill)
                .cpu_per_mb(0.10)
                .op(Operator::Join)
                .shuffle_out(iter),
        )
        .stage(
            StageSpec::shuffle("iter-3", iter)
                .cache_spill_read(cache_spill)
                .cpu_per_mb(0.030)
                .op(Operator::Join)
                .shuffle_out(iter),
        )
        .stage(
            StageSpec::shuffle("iter-4", iter)
                .cache_spill_read(cache_spill)
                .cpu_per_mb(0.015)
                .op(Operator::Join)
                .shuffle_out(iter),
        )
        .stage(
            StageSpec::shuffle("write-ranks", iter)
                .cpu_per_mb(0.008)
                .write_output(0.12 * input_mb),
        )
        .build()
}

/// NWeight over `input_mb` MB of graph data (paper: 0.28 GiB input
/// exploding to 10.23 GiB of I/O — +3553 %, the most extreme amplification
/// in Table 2). N-hop neighbourhood enumeration multiplies the working set
/// each hop.
///
/// Modelled amplification: `1 + 2·(3 + 6 + 8.5) + 0.5 = 36.5x`.
pub fn nweight(input_mb: f64) -> JobSpec {
    JobSpec::builder("nweight")
        .stage(
            StageSpec::read("load-graph", input_mb)
                .cpu_per_mb(0.12)
                .op(Operator::FlatMap)
                .shuffle_out(3.0 * input_mb),
        )
        .stage(
            StageSpec::shuffle("hop-2", 3.0 * input_mb)
                .cpu_per_mb(0.08)
                .op(Operator::GroupByKey)
                .shuffle_out(6.0 * input_mb),
        )
        .stage(
            StageSpec::shuffle("hop-3", 6.0 * input_mb)
                .cpu_per_mb(0.06)
                .op(Operator::GroupByKey)
                .shuffle_out(8.5 * input_mb),
        )
        .stage(
            StageSpec::shuffle("write-weights", 8.5 * input_mb)
                .cpu_per_mb(0.02)
                .write_output(0.5 * input_mb),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_core::StageKind;

    #[test]
    fn pagerank_has_six_stages() {
        assert_eq!(pagerank(1024.0).stages.len(), 6);
    }

    #[test]
    fn pagerank_only_first_and_last_are_io() {
        // §4: "out of the total 5 [intermediate] stages, only the first and
        // the last stages use I/O operations".
        let job = pagerank(1024.0);
        assert_eq!(job.stages[0].kind(), StageKind::Io);
        assert_eq!(job.stages[5].kind(), StageKind::Io);
        for stage in &job.stages[1..5] {
            assert_eq!(stage.kind(), StageKind::Generic, "stage {}", stage.name);
        }
    }

    #[test]
    fn pagerank_iterations_shuffle_heavily() {
        let job = pagerank(1000.0);
        for stage in &job.stages[1..5] {
            assert!(stage.shuffle_in_mb > 0.0);
            assert!(stage.shuffle_out_mb > 0.0);
        }
    }

    #[test]
    fn pagerank_cpu_decays_across_iterations() {
        let job = pagerank(1000.0);
        assert!(job.stages[3].cpu_per_mb > job.stages[4].cpu_per_mb);
        assert!(job.stages[4].cpu_per_mb > job.stages[5].cpu_per_mb);
    }

    #[test]
    fn nweight_expands_then_writes() {
        let job = nweight(100.0);
        assert_eq!(job.stages.len(), 4);
        assert!(job.stages[1].shuffle_out_mb > job.stages[0].shuffle_out_mb);
        assert!(job.stages[2].shuffle_out_mb > job.stages[1].shuffle_out_mb);
        assert!(job.stages[3].output_mb < 100.0);
    }
}
