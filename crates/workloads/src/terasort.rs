//! Micro benchmarks: Terasort and SQL Scan.

use sae_dag::{JobSpec, Operator, StageSpec};

/// Terasort over `input_mb` MB (paper: 111.75 GiB input, Table 3's 120 GiB
/// problem size).
///
/// Three stages, all structurally I/O (§4: "the first two read from the
/// disk and the last one writes the results"):
///
/// 0. **sample** — `textFile().sample()` scans the full input to build the
///    range partitioner. Nearly pure I/O (Figure 1: 6 % CPU).
/// 1. **map** — re-reads the input and spills sorted, *compressed* runs for
///    the shuffle (~0.42x of raw, `spark.shuffle.compress`); 15 % CPU.
/// 2. **reduce** — fetches shuffle data and writes the sorted output
///    (equal to the input size); 9 % CPU.
///
/// Modelled I/O amplification: `1 + (1 + 0.42) + (0.42 + 1) = 3.84x`,
/// matching Table 2's 429.35 / 111.75.
pub fn terasort(input_mb: f64) -> JobSpec {
    let spill = 0.42 * input_mb;
    JobSpec::builder("terasort")
        .stage(
            StageSpec::read("sample", input_mb)
                .cpu_per_mb(0.018)
                .op(Operator::Sample),
        )
        .stage(
            StageSpec::read("map", input_mb)
                .cpu_per_mb(0.045)
                .op(Operator::SortByKey)
                .shuffle_out(spill),
        )
        .stage(
            StageSpec::shuffle("reduce", spill)
                .cpu_per_mb(0.070)
                .write_output(input_mb),
        )
        .build()
}

/// SQL Scan over `input_mb` MB: a single map-only stage that reads the
/// table and writes the (uncompressed, hence larger) selection, replicated
/// 4x by the DFS — which is how a "scan" reaches Table 2's 6.3x I/O
/// amplification.
pub fn scan(input_mb: f64) -> JobSpec {
    JobSpec::builder("scan")
        .stage(
            StageSpec::read("scan", input_mb)
                .cpu_per_mb(0.04)
                .op(Operator::Filter)
                .write_output(1.325 * input_mb),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_core::StageKind;

    #[test]
    fn terasort_has_three_io_stages() {
        let job = terasort(1024.0);
        assert_eq!(job.stages.len(), 3);
        for stage in &job.stages {
            assert_eq!(stage.kind(), StageKind::Io, "stage {}", stage.name);
        }
    }

    #[test]
    fn terasort_output_equals_input() {
        let job = terasort(2048.0);
        assert_eq!(job.stages[2].output_mb, 2048.0);
    }

    #[test]
    fn terasort_shuffle_chain_consistent() {
        let job = terasort(1000.0);
        assert_eq!(job.stages[1].shuffle_out_mb, job.stages[2].shuffle_in_mb);
    }

    #[test]
    fn terasort_cpu_intensity_ordering_matches_figure_1() {
        // Stage 0 (pure scan) is the least CPU-intensive stage.
        let job = terasort(1000.0);
        assert!(job.stages[0].cpu_per_mb < job.stages[1].cpu_per_mb);
        assert!(job.stages[0].cpu_per_mb < job.stages[2].cpu_per_mb);
    }

    #[test]
    fn scan_is_single_io_stage() {
        let job = scan(512.0);
        assert_eq!(job.stages.len(), 1);
        assert_eq!(job.stages[0].kind(), StageKind::Io);
        assert!(job.stages[0].output_mb > 512.0);
    }
}
