//! The workload catalog: one entry per application in the evaluation.

use sae_dag::{EngineConfig, JobSpec};

/// The applications of Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Sort 120 GiB of records (micro benchmark; Figures 2, 5–9, 10–12).
    Terasort,
    /// Iterative web-graph ranking (websearch; Figures 2, 5, 8).
    PageRank,
    /// SQL aggregation over hive tables (Figures 4, 5, 8).
    Aggregation,
    /// SQL two-table join (Figures 4, 5, 8).
    Join,
    /// SQL table scan (Table 2).
    Scan,
    /// Naive Bayes training (Table 2).
    Bayes,
    /// Latent Dirichlet Allocation (Table 2).
    Lda,
    /// Graph N-hop neighbourhood enumeration (Table 2).
    NWeight,
    /// Support-vector-machine training (Table 2).
    Svm,
}

impl WorkloadKind {
    /// Every workload, in Table 2 order.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::Aggregation,
        WorkloadKind::Bayes,
        WorkloadKind::Join,
        WorkloadKind::Lda,
        WorkloadKind::NWeight,
        WorkloadKind::PageRank,
        WorkloadKind::Scan,
        WorkloadKind::Terasort,
        WorkloadKind::Svm,
    ];

    /// Lower-case stable name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Terasort => "terasort",
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::Aggregation => "aggregation",
            WorkloadKind::Join => "join",
            WorkloadKind::Scan => "scan",
            WorkloadKind::Bayes => "bayes",
            WorkloadKind::Lda => "lda",
            WorkloadKind::NWeight => "nweight",
            WorkloadKind::Svm => "svm",
        }
    }

    /// HiBench category (Table 3's "Type" column).
    pub fn hibench_category(self) -> &'static str {
        match self {
            WorkloadKind::Terasort => "micro",
            WorkloadKind::Scan | WorkloadKind::Aggregation | WorkloadKind::Join => "sql",
            WorkloadKind::PageRank => "websearch",
            WorkloadKind::NWeight => "graph",
            WorkloadKind::Bayes | WorkloadKind::Lda | WorkloadKind::Svm => "ml",
        }
    }

    /// HiBench problem-size label (Table 3's "Size" column).
    pub fn problem_size(self) -> &'static str {
        match self {
            WorkloadKind::Terasort => "120 GiB",
            WorkloadKind::PageRank => "gigantic",
            WorkloadKind::Aggregation | WorkloadKind::Join | WorkloadKind::Scan => "bigdata",
            WorkloadKind::Bayes | WorkloadKind::Lda | WorkloadKind::NWeight | WorkloadKind::Svm => {
                "huge"
            }
        }
    }

    /// Input size in GiB (Table 2's "Input Size" column).
    pub fn input_gib(self) -> f64 {
        match self {
            WorkloadKind::Aggregation => 17.87,
            WorkloadKind::Bayes => 3.50,
            WorkloadKind::Join => 17.87,
            WorkloadKind::Lda => 0.63,
            WorkloadKind::NWeight => 0.28,
            WorkloadKind::PageRank => 18.56,
            WorkloadKind::Scan => 17.87,
            WorkloadKind::Terasort => 111.75,
            WorkloadKind::Svm => 107.29,
        }
    }

    /// I/O activity reported in Table 2, in GiB (reference values).
    pub fn paper_io_activity_gib(self) -> f64 {
        match self {
            WorkloadKind::Aggregation => 37.44,
            WorkloadKind::Bayes => 9.80,
            WorkloadKind::Join => 21.06,
            WorkloadKind::Lda => 3.83,
            WorkloadKind::NWeight => 10.23,
            WorkloadKind::PageRank => 128.3,
            WorkloadKind::Scan => 112.56,
            WorkloadKind::Terasort => 429.35,
            WorkloadKind::Svm => 203.92,
        }
    }

    /// Builds the workload at the paper's input size.
    pub fn build(self) -> Workload {
        self.build_scaled(1.0)
    }

    /// Builds the workload with all volumes multiplied by `scale`
    /// (Figure 9 scales Terasort input proportionally to node count).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn build_scaled(self, scale: f64) -> Workload {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive, got {scale}"
        );
        let input_mb = self.input_gib() * 1024.0 * scale;
        let (job, output_replication) = match self {
            WorkloadKind::Terasort => (crate::terasort::terasort(input_mb), 1),
            WorkloadKind::Scan => (crate::terasort::scan(input_mb), 4),
            WorkloadKind::PageRank => (crate::web::pagerank(input_mb), 1),
            WorkloadKind::NWeight => (crate::web::nweight(input_mb), 1),
            WorkloadKind::Aggregation => (crate::sql::aggregation(input_mb), 1),
            WorkloadKind::Join => (crate::sql::join(input_mb), 1),
            WorkloadKind::Bayes => (crate::ml::bayes(input_mb), 1),
            WorkloadKind::Lda => (crate::ml::lda(input_mb), 1),
            WorkloadKind::Svm => (crate::ml::svm(input_mb), 1),
        };
        Workload {
            kind: self,
            job,
            input_mb,
            output_replication,
        }
    }
}

/// A fully specified workload: the job plus engine settings it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Which application this is.
    pub kind: WorkloadKind,
    /// The stage pipeline.
    pub job: JobSpec,
    /// DFS input volume in MB.
    pub input_mb: f64,
    /// Output replication factor this workload is measured with.
    pub output_replication: usize,
}

impl Workload {
    /// Applies the workload's engine-config requirements to `base`.
    pub fn configure(&self, mut base: EngineConfig) -> EngineConfig {
        base.output_replication = self.output_replication;
        base
    }

    /// Predicted disk I/O activity in MB from the stage specs alone
    /// (reads: DFS input + shuffle serves; writes: spills + replicated
    /// output). The engine's measured accounting matches this; tests pin
    /// both against Table 2.
    pub fn expected_io_mb(&self, nodes: usize) -> f64 {
        let rep = self.output_replication.min(nodes) as f64;
        self.job
            .stages
            .iter()
            .map(|s| s.read_mb + s.shuffle_in_mb + s.shuffle_out_mb + s.output_mb * rep)
            .sum()
    }

    /// Predicted I/O amplification relative to input.
    pub fn expected_amplification(&self, nodes: usize) -> f64 {
        self.expected_io_mb(nodes) / self.input_mb
    }

    /// Renders a human-readable stage table for this workload.
    ///
    /// # Examples
    ///
    /// ```
    /// use sae_workloads::WorkloadKind;
    ///
    /// let text = WorkloadKind::Terasort.build().describe();
    /// assert!(text.contains("reduce"));
    /// assert!(text.contains("io"));
    /// ```
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} ({}, {} input, {:.2} GiB)
",
            self.kind.name(),
            self.kind.hibench_category(),
            self.kind.problem_size(),
            self.input_mb / 1024.0,
        );
        out.push_str(
            "stage  name            kind     read GiB  shuf-in  shuf-out  out GiB  cpu s/MB
",
        );
        for (i, s) in self.job.stages.iter().enumerate() {
            let kind = match s.kind() {
                sae_core::StageKind::Io => "io",
                sae_core::StageKind::Generic => "generic",
            };
            out.push_str(&format!(
                "{:<6} {:<15} {:<8} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>9.3}
",
                i,
                s.name,
                kind,
                s.read_mb / 1024.0,
                s.shuffle_in_mb / 1024.0,
                s.shuffle_out_mb / 1024.0,
                s.output_mb / 1024.0,
                s.cpu_per_mb,
            ));
        }
        out.push_str(&format!(
            "modelled I/O amplification (4 nodes): {:.2}x (paper: {:.2}x)
",
            self.expected_amplification(4),
            self.kind.paper_io_activity_gib() / self.kind.input_gib(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_validate() {
        for kind in WorkloadKind::ALL {
            let w = kind.build();
            w.job.validate();
            assert!(w.input_mb > 0.0);
            assert!(!w.job.stages.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn amplification_tracks_table_2_within_tolerance() {
        // Shapes, not absolutes: each workload's modelled amplification
        // must be within ±35% of Table 2's measured ratio.
        for kind in WorkloadKind::ALL {
            let w = kind.build_scaled(1.0);
            let modelled = w.expected_amplification(4);
            let paper = kind.paper_io_activity_gib() / kind.input_gib();
            let rel = (modelled - paper).abs() / paper;
            assert!(
                rel < 0.35,
                "{}: modelled {modelled:.2}x vs paper {paper:.2}x",
                kind.name()
            );
        }
    }

    #[test]
    fn scaling_multiplies_volumes() {
        let base = WorkloadKind::Terasort.build_scaled(1.0);
        let scaled = WorkloadKind::Terasort.build_scaled(4.0);
        assert!((scaled.input_mb / base.input_mb - 4.0).abs() < 1e-9);
        assert!((scaled.expected_io_mb(4) / base.expected_io_mb(4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scan_replicates_output() {
        assert_eq!(WorkloadKind::Scan.build().output_replication, 4);
    }

    #[test]
    fn configure_applies_replication() {
        let w = WorkloadKind::Scan.build();
        let cfg = w.configure(EngineConfig::four_node_hdd());
        assert_eq!(cfg.output_replication, 4);
    }

    #[test]
    fn categories_match_table_3() {
        assert_eq!(WorkloadKind::Terasort.hibench_category(), "micro");
        assert_eq!(WorkloadKind::Join.hibench_category(), "sql");
        assert_eq!(WorkloadKind::Aggregation.hibench_category(), "sql");
        assert_eq!(WorkloadKind::PageRank.hibench_category(), "websearch");
    }

    #[test]
    fn describe_renders_every_stage() {
        for kind in WorkloadKind::ALL {
            let w = kind.build();
            let text = w.describe();
            assert!(text.contains(kind.name()));
            assert_eq!(
                text.lines().count(),
                w.job.stages.len() + 3,
                "{}:
{text}",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = WorkloadKind::Terasort.build_scaled(0.0);
    }
}
