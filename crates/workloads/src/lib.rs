//! HiBench-style workload definitions for the SAE engine.
//!
//! The paper evaluates on the HiBench benchmarking suite (Table 2 and
//! Table 3): Terasort, PageRank, SQL Aggregation/Join/Scan, Bayes, LDA,
//! NWeight and SVM. The original inputs are generated datasets we do not
//! have; what the executors *see*, however, is fully characterised by each
//! workload's stage structure — how much each stage reads, shuffles,
//! computes and writes. This crate encodes those structures, with volumes
//! calibrated against the paper's published evidence:
//!
//! * per-workload I/O amplification (Table 2),
//! * per-stage CPU utilisation (Figure 1: e.g. Terasort 6/15/9 %,
//!   Join stage 0 at 68 %, Aggregation stage 0 at 46 %),
//! * stage counts and which stages are structurally I/O (§4: all three
//!   Terasort stages; only the first and last of PageRank's six).
//!
//! Shuffle volumes are below the raw data size because Spark compresses
//! shuffle files (`spark.shuffle.compress=true` by default) — that is why
//! Terasort's measured activity is 3.8x its input rather than the naive
//! 5x.
//!
//! # Examples
//!
//! ```
//! use sae_workloads::WorkloadKind;
//!
//! let terasort = WorkloadKind::Terasort.build();
//! assert_eq!(terasort.job.stages.len(), 3);
//! // All three Terasort stages are structurally I/O (§4).
//! assert!(terasort.job.stages.iter().all(|s| s.kind() == sae_core::StageKind::Io));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
pub mod datagen;
mod ml;
pub mod spill;
mod sql;
mod terasort;
mod web;

pub use catalog::{Workload, WorkloadKind};
