//! File-backed record spills: the real I/O behind the live runtime's
//! Terasort stages.
//!
//! The simulator *models* disk traffic; the live runtime must actually
//! block on it, so its map stage writes generated records to spill files
//! and its sort stage reads them back — through these helpers, which fix
//! the on-disk format (records packed back to back, 100 bytes each, no
//! header) and reject corrupt files instead of mis-sorting silently.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::datagen::{TeraRecord, KEY_BYTES, VALUE_BYTES};

/// On-disk size of one record in bytes.
pub const RECORD_BYTES: usize = KEY_BYTES + VALUE_BYTES;

/// Writes `records` to `path` (truncating any previous file — a retried
/// attempt must overwrite its predecessor's partial output) and returns
/// the number of bytes written.
pub fn write_records(path: &Path, records: &[TeraRecord]) -> io::Result<u64> {
    let mut out = BufWriter::new(File::create(path)?);
    for r in records {
        out.write_all(&r.key)?;
        out.write_all(&r.value)?;
    }
    out.flush()?;
    Ok((records.len() * RECORD_BYTES) as u64)
}

/// Reads a spill file written by [`write_records`] back into memory.
///
/// A file whose length is not a multiple of [`RECORD_BYTES`] — a spill
/// interrupted by a crash mid-record — is rejected with
/// [`io::ErrorKind::InvalidData`] so the caller retries the producing
/// task instead of sorting garbage.
pub fn read_records(path: &Path) -> io::Result<Vec<TeraRecord>> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len % RECORD_BYTES as u64 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill file {path:?} has a trailing partial record ({len} bytes)"),
        ));
    }
    let mut reader = BufReader::new(file);
    let mut records = Vec::with_capacity((len / RECORD_BYTES as u64) as usize);
    let mut buf = [0u8; RECORD_BYTES];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {
                let mut key = [0u8; KEY_BYTES];
                let mut value = [0u8; VALUE_BYTES];
                key.copy_from_slice(&buf[..KEY_BYTES]);
                value.copy_from_slice(&buf[KEY_BYTES..]);
                records.push(TeraRecord { key, value });
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::teragen;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sae-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = teragen(1000, 42);
        let path = temp_path("roundtrip.spill");
        let written = write_records(&path, &records).unwrap();
        assert_eq!(written, 1000 * RECORD_BYTES as u64);
        assert_eq!(read_records(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_spill_round_trips() {
        let path = temp_path("empty.spill");
        write_records(&path, &[]).unwrap();
        assert!(read_records(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_truncates_previous_attempt() {
        let path = temp_path("rewrite.spill");
        write_records(&path, &teragen(500, 1)).unwrap();
        let second = teragen(20, 2);
        write_records(&path, &second).unwrap();
        assert_eq!(read_records(&path).unwrap(), second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_record_rejected() {
        let path = temp_path("partial.spill");
        write_records(&path, &teragen(3, 7)).unwrap();
        // Simulate a crash mid-record: chop 10 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = read_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reports_not_found() {
        let err = read_records(Path::new("/nonexistent/sae.spill")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
