//! File-backed record spills: the real I/O behind the live runtime's
//! Terasort stages.
//!
//! The simulator *models* disk traffic; the live runtime must actually
//! block on it, so its map stage writes generated records to spill files
//! and its sort stage reads them back — through these helpers, which fix
//! the on-disk format (records packed back to back, 100 bytes each,
//! followed by an 8-byte checksum footer) and reject corrupt files
//! instead of mis-sorting silently. The footer is `[crc32 BE][magic]`
//! where the CRC covers every record byte: truncation, bit rot, and a
//! crash mid-record all surface as [`io::ErrorKind::InvalidData`], which
//! the live runtime treats as a *retryable* task failure (the retry
//! regenerates the partition from its deterministic lineage).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::datagen::{TeraRecord, KEY_BYTES, VALUE_BYTES};

/// On-disk size of one record in bytes.
pub const RECORD_BYTES: usize = KEY_BYTES + VALUE_BYTES;

/// On-disk size of the checksum footer: a big-endian IEEE CRC-32 of the
/// record bytes followed by [`SPILL_MAGIC`].
pub const FOOTER_BYTES: usize = 8;

/// Trailing magic marking a complete spill file. A file without it was
/// truncated (or predates the checksummed format) and is rejected.
pub const SPILL_MAGIC: [u8; 4] = *b"SAEs";

/// IEEE 802.3 CRC-32 lookup table, built at compile time (the workspace
/// carries no checksum dependency).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// Incremental IEEE CRC-32 (the zlib/`cksum -o 3` polynomial).
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = CRC32_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    /// The finished checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Writes `records` to `path` (truncating any previous file — a retried
/// attempt must overwrite its predecessor's partial output), appends the
/// checksum footer, and returns the number of bytes written (records plus
/// footer).
pub fn write_records(path: &Path, records: &[TeraRecord]) -> io::Result<u64> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut crc = Crc32::new();
    for r in records {
        crc.update(&r.key);
        crc.update(&r.value);
        out.write_all(&r.key)?;
        out.write_all(&r.value)?;
    }
    out.write_all(&crc.finish().to_be_bytes())?;
    out.write_all(&SPILL_MAGIC)?;
    out.flush()?;
    Ok((records.len() * RECORD_BYTES + FOOTER_BYTES) as u64)
}

/// Reads a spill file written by [`write_records`] back into memory,
/// verifying the checksum footer.
///
/// Rejected with [`io::ErrorKind::InvalidData`]:
/// * a file too short for the footer or whose record region is not a
///   multiple of [`RECORD_BYTES`] — a spill interrupted mid-record;
/// * a file without the trailing [`SPILL_MAGIC`] — truncated at a record
///   boundary, which length arithmetic alone cannot catch;
/// * a CRC mismatch — bit rot or an overwrite torn mid-file.
///
/// Callers retry the producing task instead of sorting garbage.
pub fn read_records(path: &Path) -> io::Result<Vec<TeraRecord>> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len < FOOTER_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill file {path:?} is too short for a checksum footer ({len} bytes)"),
        ));
    }
    let data_len = len - FOOTER_BYTES as u64;
    if !data_len.is_multiple_of(RECORD_BYTES as u64) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill file {path:?} has a trailing partial record ({data_len} data bytes)"),
        ));
    }
    let mut reader = BufReader::new(file);
    let mut records = Vec::with_capacity((data_len / RECORD_BYTES as u64) as usize);
    let mut crc = Crc32::new();
    let mut buf = [0u8; RECORD_BYTES];
    for _ in 0..records.capacity() {
        reader.read_exact(&mut buf)?;
        crc.update(&buf);
        let mut key = [0u8; KEY_BYTES];
        let mut value = [0u8; VALUE_BYTES];
        key.copy_from_slice(&buf[..KEY_BYTES]);
        value.copy_from_slice(&buf[KEY_BYTES..]);
        records.push(TeraRecord { key, value });
    }
    let mut footer = [0u8; FOOTER_BYTES];
    reader.read_exact(&mut footer)?;
    if footer[4..] != SPILL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill file {path:?} lacks the trailing magic: truncated or pre-checksum"),
        ));
    }
    let stored = u32::from_be_bytes(footer[..4].try_into().expect("4-byte slice"));
    let computed = crc.finish();
    if stored != computed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "spill file {path:?} failed its checksum: stored {stored:#010x}, \
                 computed {computed:#010x}"
            ),
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::teragen;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sae-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = teragen(1000, 42);
        let path = temp_path("roundtrip.spill");
        let written = write_records(&path, &records).unwrap();
        assert_eq!(written, (1000 * RECORD_BYTES + FOOTER_BYTES) as u64);
        assert_eq!(read_records(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value: crc32(b"123456789").
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let path = temp_path("bitrot.spill");
        write_records(&path, &teragen(100, 5)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1234] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_a_record_boundary_is_caught() {
        // Chop exactly one record off the end: the remaining length still
        // parses as N-1 records plus a would-be footer (record bytes), so
        // only the magic/CRC can catch it.
        let path = temp_path("truncated.spill");
        write_records(&path, &teragen(10, 9)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - RECORD_BYTES]).unwrap();
        let err = read_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_spill_round_trips() {
        let path = temp_path("empty.spill");
        write_records(&path, &[]).unwrap();
        assert!(read_records(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_truncates_previous_attempt() {
        let path = temp_path("rewrite.spill");
        write_records(&path, &teragen(500, 1)).unwrap();
        let second = teragen(20, 2);
        write_records(&path, &second).unwrap();
        assert_eq!(read_records(&path).unwrap(), second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_record_rejected() {
        let path = temp_path("partial.spill");
        write_records(&path, &teragen(3, 7)).unwrap();
        // Simulate a crash mid-record: chop 10 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = read_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reports_not_found() {
        let err = read_records(Path::new("/nonexistent/sae.spill")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
