//! Deterministic data generators, in the spirit of HiBench's prepare
//! phase.
//!
//! The simulator never materialises data, but the real-thread-pool
//! demonstrations do: [`teragen`] produces Terasort-format records
//! (10-byte key, 90-byte payload) and [`RangePartitioner`] splits the key
//! space the way Terasort's sampling stage does.

use sae_sim::rng::DeterministicRng;

/// Key width of a Terasort record.
pub const KEY_BYTES: usize = 10;
/// Payload width of a Terasort record.
pub const VALUE_BYTES: usize = 90;

/// One 100-byte Terasort record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TeraRecord {
    /// The sort key.
    pub key: [u8; KEY_BYTES],
    /// Opaque payload.
    pub value: [u8; VALUE_BYTES],
}

/// Generates `count` records deterministically from `seed`.
///
/// # Examples
///
/// ```
/// use sae_workloads::datagen::teragen;
///
/// let a = teragen(100, 7);
/// let b = teragen(100, 7);
/// assert_eq!(a, b);
/// assert_ne!(a, teragen(100, 8));
/// ```
pub fn teragen(count: usize, seed: u64) -> Vec<TeraRecord> {
    let mut rng = DeterministicRng::seed(seed);
    (0..count)
        .map(|_| {
            let mut key = [0u8; KEY_BYTES];
            for b in &mut key {
                // Printable ASCII keys, like the original teragen.
                *b = b' ' + rng.index(95) as u8;
            }
            let mut value = [0u8; VALUE_BYTES];
            for b in &mut value {
                *b = rng.index(256) as u8;
            }
            TeraRecord { key, value }
        })
        .collect()
}

/// A range partitioner built by sampling, as Terasort's first stage does.
///
/// # Examples
///
/// ```
/// use sae_workloads::datagen::{teragen, RangePartitioner};
///
/// let records = teragen(10_000, 1);
/// let partitioner = RangePartitioner::from_sample(&records, 8);
/// let p = partitioner.partition(&records[0]);
/// assert!(p < 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    boundaries: Vec<[u8; KEY_BYTES]>,
}

impl RangePartitioner {
    /// Builds a partitioner with `partitions` output ranges from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or the sample is empty.
    pub fn from_sample(sample: &[TeraRecord], partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert!(!sample.is_empty(), "cannot sample an empty dataset");
        let mut keys: Vec<[u8; KEY_BYTES]> = sample.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        let boundaries = (1..partitions)
            .map(|p| keys[p * keys.len() / partitions])
            .collect();
        Self { boundaries }
    }

    /// Number of output partitions.
    pub fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The partition a record belongs to.
    pub fn partition(&self, record: &TeraRecord) -> usize {
        self.boundaries.partition_point(|b| *b <= record.key)
    }

    /// Splits `records` into per-partition buckets.
    pub fn split(&self, records: &[TeraRecord]) -> Vec<Vec<TeraRecord>> {
        let mut buckets = vec![Vec::new(); self.partitions()];
        for r in records {
            buckets[self.partition(r)].push(*r);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teragen_is_deterministic() {
        assert_eq!(teragen(500, 42), teragen(500, 42));
    }

    #[test]
    fn teragen_keys_are_printable_ascii() {
        for r in teragen(200, 1) {
            for &b in &r.key {
                assert!((b' '..=b'~').contains(&b));
            }
        }
    }

    #[test]
    fn partitioner_covers_all_partitions_roughly_evenly() {
        let records = teragen(20_000, 3);
        let partitioner = RangePartitioner::from_sample(&records, 16);
        let buckets = partitioner.split(&records);
        assert_eq!(buckets.len(), 16);
        let min = buckets.iter().map(Vec::len).min().unwrap();
        let max = buckets.iter().map(Vec::len).max().unwrap();
        assert!(min > 0, "empty partition");
        assert!(max < 3 * 20_000 / 16, "badly skewed partitioning: {max}");
    }

    #[test]
    fn partitions_are_ordered_ranges() {
        let records = teragen(5_000, 9);
        let partitioner = RangePartitioner::from_sample(&records, 8);
        let buckets = partitioner.split(&records);
        // Max key of bucket i <= min key of bucket i+1.
        for pair in buckets.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if let (Some(max_a), Some(min_b)) =
                (a.iter().map(|r| r.key).max(), b.iter().map(|r| r.key).min())
            {
                assert!(max_a <= min_b);
            }
        }
    }

    #[test]
    fn sorted_buckets_concatenate_to_global_order() {
        let records = teragen(3_000, 11);
        let partitioner = RangePartitioner::from_sample(&records, 4);
        let mut buckets = partitioner.split(&records);
        for b in &mut buckets {
            b.sort_unstable();
        }
        let concatenated: Vec<TeraRecord> = buckets.into_iter().flatten().collect();
        let mut expected = records.clone();
        expected.sort_unstable();
        assert_eq!(concatenated, expected);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        let _ = RangePartitioner::from_sample(&[], 4);
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let records = teragen(100, 2);
        let p = RangePartitioner::from_sample(&records, 1);
        assert_eq!(p.partitions(), 1);
        assert!(records.iter().all(|r| p.partition(r) == 0));
    }
}
