//! Offline vendored facade for `serde`.
//!
//! The workspace only uses serde's *derives* as forward-looking markers on
//! metric snapshot types; nothing serializes yet (no serde_json in the
//! dependency tree). This facade supplies the two marker traits and, under
//! the `derive` feature, no-op derive macros so `#[derive(Serialize,
//! Deserialize)]` compiles without the real framework.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
