//! Offline vendored subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! parking_lot's guard-returning `lock()` signature that the workspace uses.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive; `lock()` returns the guard directly
/// (no `Result`), recovering from poisoning like parking_lot does.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
