//! No-op derive macros backing the offline `serde` facade.
//!
//! The derives emit nothing: the facade's `Serialize`/`Deserialize` are pure
//! marker traits and no code in the workspace calls serialization methods.
//! `attributes(serde)` is declared so `#[serde(...)]` field attributes parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
