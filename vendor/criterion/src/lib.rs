//! Offline vendored mini-implementation of `criterion`.
//!
//! API-compatible with the subset the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`/`bench_with_input`, `BenchmarkId`, `Bencher::iter`).
//! Instead of statistical sampling it runs each benchmark a fixed small
//! number of iterations and prints the mean wall-clock time — enough to
//! compare orders of magnitude and to keep `cargo bench` working offline.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark. Coarse by design: the vendored harness trades
/// statistical rigor for offline, dependency-free builds.
const ITERATIONS: u32 = 10;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERATIONS);
    }
}

fn run_bench(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    let nanos = bencher.nanos_per_iter;
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("{label:<48} {value:10.2} {unit}/iter");
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a plain benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_bench(&label, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0u32;
        Criterion::default().bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, ITERATIONS);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        assert_eq!(seen, 7);
    }
}
