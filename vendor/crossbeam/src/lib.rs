//! Offline vendored subset of the `crossbeam` crate.
//!
//! Provides the multi-producer/multi-consumer unbounded channel API the
//! workspace uses (`channel::{unbounded, Sender, Receiver, RecvTimeoutError}`),
//! implemented over a `Mutex<VecDeque>` + `Condvar`. Throughput is lower than
//! real crossbeam but semantics (MPMC, disconnect detection, timeouts) match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvError {
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError::Disconnected);
                }
                state = self
                    .inner
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .available
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.lock();
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().items.is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.lock().items.len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn timeout_on_empty() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnected_after_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
