//! Offline vendored mini-implementation of `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//! collection / `any` strategies, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//! - cases are generated from a fixed seed sequence, so failures reproduce
//!   exactly across runs without a persistence file;
//! - no shrinking — the failing input is reported as generated;
//! - strategies are generators only (no value trees).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, like proptest's `prop_map`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $via:ident),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u128;
                    self.start + (((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i64, i32, i16, i8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Strategy returned by [`any`], generating over a type's full domain.
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over the whole domain of `T`, like `proptest::arbitrary::any`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spans several orders of magnitude.
            let mag = rng.unit_f64() * 1e9;
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }
}

/// Strategy modules grouped like proptest's `prop` re-export.
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Size specification for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy like `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u128;
                let len = self.size.lo + ((rng.next_u64() as u128 * span) >> 64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy producing `Option`s of an inner strategy's values.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Option` strategy like `proptest::option::of`: yields `None`
        /// about a quarter of the time (real proptest's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy type of [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// Uniform boolean strategy, like `proptest::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;

    /// Deterministic generator driving the strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type property-test bodies evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the mini-runner trades a little
            // coverage for wall-clock since several properties drive whole
            // engine simulations per case.
            Self { cases: 64 }
        }
    }

    /// Runs `body` against `config.cases` generated inputs, panicking on the
    /// first failure with the case number for reproduction.
    pub fn run<S, F>(config: &ProptestConfig, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        for case in 0..config.cases {
            // Golden-ratio stride decorrelates consecutive case seeds.
            let seed = 0xB5AD_4ECE_DA1C_E2A9u64.wrapping_mul(u64::from(case) + 1);
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            if let Err(err) = body(value) {
                panic!("proptest case {case} (seed {seed:#x}) failed: {err}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests; supports the `#![proptest_config(...)]` header
/// and `fn name(arg in strategy, ...) { body }` items with attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ( $($strat,)+ );
            $crate::test_runner::run(&__config, &__strategy, |( $($arg,)+ )| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts within a property body; failure aborts only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10usize..20, y in -5.0f64..5.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for &x in &v {
                prop_assert!(x < 100, "x = {x}");
            }
        }

        #[test]
        fn map_applies(s in (1usize..4).prop_map(|n| "ab".repeat(n))) {
            prop_assert_eq!(s.len() % 2, 0);
        }

        #[test]
        fn any_bool_and_u64(b in any::<bool>(), x in any::<u64>()) {
            prop_assert!(b || !b);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn same_config_same_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run, ProptestConfig};
        let collect = || {
            let mut seen = Vec::new();
            run(&ProptestConfig::with_cases(16), &(0u64..1000), |x| {
                seen.push(x);
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        use crate::test_runner::{run, ProptestConfig};
        run(&ProptestConfig::with_cases(4), &(0u64..10), |_x| {
            prop_assert!(false, "always fails");
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
