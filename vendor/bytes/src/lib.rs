//! Offline vendored placeholder for `bytes`.
//!
//! The workspace declares the dependency but does not use any of its API
//! yet; this empty crate satisfies the resolver without network access.
//! Grow it into a real subset (e.g. `Bytes`/`BytesMut`) if code starts
//! using zero-copy buffers.
