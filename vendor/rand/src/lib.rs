//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root manifest). It
//! implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension methods
//! `random::<f64/u64>()` / `random_range(Range<_>)` — on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism is the only contract callers rely on (the simulator requires
//! bit-identical streams for a given seed); statistical quality of
//! xoshiro256++ is more than sufficient for that purpose.

/// Core pseudo-random number generation: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods mirroring `rand::Rng`/`RngExt` conveniences.
pub trait RngExt: RngCore {
    /// Samples a value of type `T` (uniform over its natural domain).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Types that can be sampled uniformly from raw generator output.
pub trait FromRng {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                // Widening multiply avoids modulo bias without rejection loops.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = rng.random_range(5usize..5);
    }
}
