//! Cross-crate integration tests: full workloads through the umbrella
//! crate, asserting the paper's headline shapes.

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig, JobReport};
use sae::workloads::{Workload, WorkloadKind};

fn run(workload: &Workload, policy: ThreadPolicy) -> JobReport {
    let cfg = workload.configure(EngineConfig::four_node_hdd());
    Engine::new(cfg, policy).run(&workload.job)
}

fn adaptive() -> ThreadPolicy {
    EngineConfig::four_node_hdd().adaptive_policy()
}

#[test]
fn terasort_dynamic_beats_default_by_paper_margin() {
    // Paper §6.2: 34.4 % reduction.
    let w = WorkloadKind::Terasort.build();
    let default = run(&w, ThreadPolicy::Default).total_runtime;
    let dynamic = run(&w, adaptive()).total_runtime;
    let gain = 1.0 - dynamic / default;
    assert!(
        (0.20..0.65).contains(&gain),
        "terasort dynamic gain {gain:.2} outside the plausible band"
    );
}

#[test]
fn pagerank_dynamic_beats_default_by_paper_margin() {
    // Paper §6.2: 54.1 % reduction.
    let w = WorkloadKind::PageRank.build();
    let default = run(&w, ThreadPolicy::Default).total_runtime;
    let dynamic = run(&w, adaptive()).total_runtime;
    let gain = 1.0 - dynamic / default;
    assert!(
        (0.25..0.70).contains(&gain),
        "pagerank dynamic gain {gain:.2} outside the plausible band"
    );
}

#[test]
fn sql_dynamic_changes_little() {
    // Paper §6.2: +6.83 % (Aggregation), +2.54 % (Join) — small either way.
    for kind in [WorkloadKind::Aggregation, WorkloadKind::Join] {
        let w = kind.build();
        let default = run(&w, ThreadPolicy::Default).total_runtime;
        let dynamic = run(&w, adaptive()).total_runtime;
        let delta = (dynamic / default - 1.0).abs();
        assert!(
            delta < 0.35,
            "{}: dynamic deviates {delta:.2} from default",
            kind.name()
        );
    }
}

#[test]
fn all_nine_workloads_run_under_every_policy() {
    for kind in WorkloadKind::ALL {
        // Scale down so the full matrix stays fast.
        let w = kind.build_scaled(0.1);
        let cfg = w.configure(EngineConfig::four_node_hdd());
        for policy in [
            ThreadPolicy::Default,
            ThreadPolicy::Static(sae::core::StaticPolicy::new(8)),
            cfg.adaptive_policy(),
        ] {
            let report = Engine::new(cfg.clone(), policy).run(&w.job);
            assert_eq!(report.stages.len(), w.job.stages.len(), "{}", kind.name());
            assert!(report.total_runtime > 0.0);
            for stage in &report.stages {
                assert_eq!(
                    stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                    stage.tasks,
                    "{}: task accounting broken",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let w = WorkloadKind::PageRank.build_scaled(0.2);
    let a = run(&w, adaptive());
    let b = run(&w, adaptive());
    assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
    for (sa, sb) in a.stages.iter().zip(&b.stages) {
        assert_eq!(sa.duration.to_bits(), sb.duration.to_bits());
        assert_eq!(sa.threads_used, sb.threads_used);
    }
}

#[test]
fn different_seeds_change_details_not_shapes() {
    let w = WorkloadKind::Terasort.build_scaled(0.2);
    let base = EngineConfig::four_node_hdd();
    let r1 = Engine::new(
        w.configure(base.clone().with_seed(1)),
        ThreadPolicy::Default,
    )
    .run(&w.job)
    .total_runtime;
    let r2 = Engine::new(w.configure(base.with_seed(2)), ThreadPolicy::Default)
        .run(&w.job)
        .total_runtime;
    // Chunk jitter differs, totals stay close.
    assert!((r1 / r2 - 1.0).abs() < 0.1, "{r1} vs {r2}");
}

#[test]
fn io_accounting_matches_workload_model() {
    for kind in [WorkloadKind::Terasort, WorkloadKind::Aggregation] {
        let w = kind.build_scaled(0.25);
        let report = run(&w, ThreadPolicy::Default);
        let expected = w.expected_io_mb(report.nodes);
        let measured = report.total_disk_io_mb();
        assert!(
            (measured / expected - 1.0).abs() < 0.02,
            "{}: measured {measured:.0} MB vs modelled {expected:.0} MB",
            kind.name()
        );
    }
}

#[test]
fn scheduler_view_stays_consistent_under_resizes() {
    // The PoolSizeChanged protocol: after an adaptive run, the per-stage
    // thread sums reported by executors must match the decision traces.
    let w = WorkloadKind::Terasort.build_scaled(0.5);
    let report = run(&w, adaptive());
    for stage in &report.stages {
        for e in &stage.executors {
            assert_eq!(
                *e.decisions.last().unwrap(),
                e.final_threads,
                "trace/final mismatch"
            );
        }
        assert_eq!(
            stage.threads_used,
            stage
                .executors
                .iter()
                .map(|e| e.final_threads)
                .sum::<usize>()
        );
    }
}
