//! Edge cases and failure injection: degenerate stages, outlier nodes,
//! extreme configurations.

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig, JobSpec, StageSpec};
use sae::storage::VariabilityConfig;
use sae::workloads::WorkloadKind;

#[test]
fn single_task_stage_skips_adaptation() {
    // A stage with one block cannot fill a monitoring interval; the
    // controller must fall back to the default rather than strand the
    // stage at c_min.
    let job = JobSpec::builder("tiny")
        .stage(StageSpec::read("one-block", 100.0).cpu_per_mb(0.01))
        .build();
    let cfg = EngineConfig::four_node_hdd();
    let report = Engine::new(cfg.clone(), cfg.adaptive_policy()).run(&job);
    for e in &report.stages[0].executors {
        assert_eq!(e.final_threads, 32, "short stage must run at default");
        assert!(e.intervals.is_empty());
    }
}

#[test]
fn pure_cpu_job_reaches_default_parallelism() {
    let job = JobSpec::builder("cpu-only")
        .stage(
            StageSpec::compute("crunch")
                .cpu_per_mb(0.0)
                .base_cpu_per_task(2.0)
                .with_tasks(2000),
        )
        .build();
    let cfg = EngineConfig::four_node_hdd();
    let report = Engine::new(cfg.clone(), cfg.adaptive_policy()).run(&job);
    // Zero I/O: the controller must climb to c_max, not roll back.
    let stage = &report.stages[0];
    assert_eq!(stage.threads_used, 128, "CPU job stuck below default");
    assert!(stage.avg_cpu_iowait < 0.05);
}

#[test]
fn zero_io_stage_reports_zero_bytes() {
    let job = JobSpec::builder("cpu-only")
        .stage(
            StageSpec::compute("crunch")
                .base_cpu_per_task(1.0)
                .with_tasks(64),
        )
        .build();
    let report = Engine::new(EngineConfig::four_node_hdd(), ThreadPolicy::Default).run(&job);
    let stage = &report.stages[0];
    assert_eq!(stage.disk_read_mb, 0.0);
    assert_eq!(stage.disk_write_mb, 0.0);
    assert_eq!(stage.shuffle_mb, 0.0);
}

#[test]
fn severe_outlier_node_does_not_wedge_the_job() {
    // One node at ~30 % speed: the job must still complete, and the
    // adaptive policy must still beat the default.
    let mut variability = VariabilityConfig::das5();
    variability.outlier_probability = 0.3;
    variability.outlier_factor = 0.3;
    let cfg = EngineConfig::four_node_hdd()
        .with_variability(variability)
        .with_seed(9);
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let default = Engine::new(w.configure(cfg.clone()), ThreadPolicy::Default)
        .run(&w.job)
        .total_runtime;
    let dynamic = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy())
        .run(&w.job)
        .total_runtime;
    assert!(dynamic < default, "adaptive lost on a straggler cluster");
}

#[test]
fn single_node_cluster_works() {
    let cfg = EngineConfig::four_node_hdd().with_nodes(1);
    let w = WorkloadKind::Terasort.build_scaled(0.1);
    let report = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy()).run(&w.job);
    assert_eq!(report.nodes, 1);
    assert!(report.total_runtime > 0.0);
}

#[test]
fn output_replication_capped_by_cluster_size() {
    let mut cfg = EngineConfig::four_node_hdd().with_nodes(2);
    cfg.output_replication = 8; // more than nodes
    let job = JobSpec::builder("rep")
        .stage(StageSpec::read("r", 256.0).write_output(256.0))
        .build();
    let report = Engine::new(cfg, ThreadPolicy::Default).run(&job);
    // 256 local + 256 replica (cap at 2 replicas total on 2 nodes).
    assert!((report.stages[0].disk_write_mb - 512.0).abs() < 1.0);
}

#[test]
fn static_policy_clamps_to_core_count() {
    let job = JobSpec::builder("clamp")
        .stage(StageSpec::read("r", 1024.0))
        .build();
    let policy = ThreadPolicy::Static(sae::core::StaticPolicy::new(500));
    let report = Engine::new(EngineConfig::four_node_hdd(), policy).run(&job);
    assert_eq!(report.stages[0].threads_used, 128);
}

#[test]
fn many_small_stages_chain_correctly() {
    let mut builder =
        JobSpec::builder("chain").stage(StageSpec::read("ingest", 512.0).shuffle_out(256.0));
    for i in 0..8 {
        builder = builder.stage(
            StageSpec::shuffle(&format!("hop-{i}"), 256.0)
                .cpu_per_mb(0.01)
                .shuffle_out(256.0),
        );
    }
    let job = builder
        .stage(StageSpec::shuffle("final", 256.0).write_output(128.0))
        .build();
    let cfg = EngineConfig::four_node_hdd();
    let report = Engine::new(cfg.clone(), cfg.adaptive_policy()).run(&job);
    assert_eq!(report.stages.len(), 10);
    // Stage boundaries are barriers: start times strictly increase.
    for w in report.stages.windows(2) {
        assert!(w[1].started_at >= w[0].started_at + w[0].duration - 1e-6);
    }
}

#[test]
fn ssd_cluster_runs_all_policies() {
    let cfg = EngineConfig::four_node_ssd();
    let w = WorkloadKind::Terasort.build_scaled(0.2);
    for policy in [ThreadPolicy::Default, cfg.adaptive_policy()] {
        let report = Engine::new(w.configure(cfg.clone()), policy).run(&w.job);
        assert!(report.total_runtime > 0.0);
    }
}

#[test]
fn executor_loss_mid_stage_recovers_and_completes() {
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.fault_plan = Some(sae::dag::FaultPlan::new(7).with_crash(1, 60.0, 30.0));
    let baseline = Engine::new(
        w.configure(EngineConfig::four_node_hdd()),
        ThreadPolicy::Default,
    )
    .run(&w.job);
    let failed = Engine::new(w.configure(cfg), ThreadPolicy::Default).run(&w.job);
    assert_eq!(failed.stages.len(), baseline.stages.len());
    // Every task still runs exactly once per stage.
    for stage in &failed.stages {
        assert_eq!(
            stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
            stage.tasks,
            "task accounting broken after executor loss"
        );
    }
    // Losing an executor (and its partial work) costs time.
    assert!(
        failed.total_runtime > baseline.total_runtime,
        "failure was free: {} vs {}",
        failed.total_runtime,
        baseline.total_runtime
    );
}

#[test]
fn executor_loss_under_adaptive_policy_completes() {
    let w = WorkloadKind::PageRank.build_scaled(0.5);
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.fault_plan = Some(sae::dag::FaultPlan::new(7).with_crash(0, 45.0, 20.0));
    let report = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy()).run(&w.job);
    assert_eq!(report.stages.len(), w.job.stages.len());
    for stage in &report.stages {
        assert_eq!(
            stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
            stage.tasks
        );
        for e in &stage.executors {
            for &d in &e.decisions {
                assert!((2..=32).contains(&d));
            }
        }
    }
}

#[test]
fn failure_after_job_end_is_harmless() {
    let w = WorkloadKind::Join.build_scaled(0.1);
    let mut cfg = EngineConfig::four_node_hdd();
    // Crash scheduled long after the job finishes.
    cfg.fault_plan = Some(sae::dag::FaultPlan::new(7).with_crash(2, 1.0e6, 10.0));
    let baseline = Engine::new(
        w.configure(EngineConfig::four_node_hdd()),
        ThreadPolicy::Default,
    )
    .run(&w.job);
    let report = Engine::new(w.configure(cfg), ThreadPolicy::Default).run(&w.job);
    assert!((report.total_runtime - baseline.total_runtime).abs() < 1e-6);
}

#[test]
fn repeated_failures_across_stages_still_complete() {
    // Failure during stage 0, recovery, and the job carries through the
    // remaining stages normally.
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let mut cfg = EngineConfig::four_node_hdd();
    // Down for most of stage 0.
    cfg.fault_plan = Some(sae::dag::FaultPlan::new(7).with_crash(3, 10.0, 200.0));
    let report = Engine::new(w.configure(cfg), ThreadPolicy::Default).run(&w.job);
    for stage in &report.stages {
        assert_eq!(
            stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
            stage.tasks
        );
    }
}
