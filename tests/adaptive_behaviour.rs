//! Behavioural tests of the MAPE-K loop observed end to end through the
//! engine: exploration traces, knowledge-base contents, and the real pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sae::core::MapeConfig;
use sae::dag::{Engine, EngineConfig};
use sae::pool::AdaptivePool;
use sae::workloads::WorkloadKind;

#[test]
fn exploration_doubles_from_c_min() {
    let cfg = EngineConfig::four_node_hdd();
    let w = WorkloadKind::Terasort.build();
    let report = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy()).run(&w.job);
    for stage in &report.stages {
        for e in &stage.executors {
            // Every step in the trace is either a doubling or a rollback to
            // a previously visited count (or the L3 jump to c_max).
            for pair in e.decisions.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                let doubling = to == (from * 2).min(32);
                let jump = to == 32;
                let rollback = to < from && e.decisions.contains(&to);
                assert!(
                    doubling || jump || rollback,
                    "illegal transition {from} -> {to} in {:?}",
                    e.decisions
                );
            }
        }
    }
}

#[test]
fn interval_reports_have_consistent_arithmetic() {
    let cfg = EngineConfig::four_node_hdd();
    let w = WorkloadKind::Terasort.build();
    let report = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy()).run(&w.job);
    let mut seen = 0;
    for stage in &report.stages {
        for e in &stage.executors {
            for iv in &e.intervals {
                seen += 1;
                assert!(iv.duration >= 0.0);
                assert!(iv.epoll_wait >= 0.0);
                if iv.duration > 0.0 {
                    let mu = iv.bytes / iv.duration;
                    assert!((mu - iv.throughput).abs() < 1e-6 * mu.max(1.0));
                }
                if iv.throughput > 1e-6 {
                    assert!((iv.zeta - iv.epoll_wait / iv.throughput).abs() < 1e-9);
                }
            }
        }
    }
    assert!(seen > 8, "expected a populated knowledge base, saw {seen}");
}

#[test]
fn epoll_wait_monotone_across_interval_thread_counts() {
    // Within an executor's climb, ε per interval grows with the thread
    // count (the Figure 7 trend), allowing for the duty-cycle noise of the
    // smallest intervals.
    let cfg = EngineConfig::four_node_hdd();
    let w = WorkloadKind::Terasort.build();
    let report = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy()).run(&w.job);
    let stage0 = &report.stages[0];
    for e in &stage0.executors {
        if e.intervals.len() >= 3 {
            let first = e.intervals.first().unwrap();
            let last = e.intervals.last().unwrap();
            assert!(
                last.epoll_wait > first.epoll_wait,
                "ε did not grow across the climb: {:?}",
                e.intervals
            );
        }
    }
}

#[test]
fn real_pool_and_simulated_executor_share_the_controller() {
    // The same MapeConfig drives both backends; sanity-check the real pool
    // against an uncontended probe: it must reach c_max like the simulated
    // CPU-bound stage does.
    let pool = AdaptivePool::new(MapeConfig::new(2, 8), Arc::new(|| (0.0, 0.0)));
    pool.stage_started(Some(200));
    assert_eq!(pool.current_threads(), 2);
    for _ in 0..64 {
        pool.submit(|| {});
    }
    pool.shutdown();
    assert_eq!(pool.current_threads(), 8);
    assert!(pool.settled());
}

#[test]
fn real_pool_rolls_back_under_synthetic_contention() {
    let wait_us = Arc::new(AtomicU64::new(0));
    let bytes_kb = Arc::new(AtomicU64::new(0));
    let probe_wait = Arc::clone(&wait_us);
    let probe_bytes = Arc::clone(&bytes_kb);
    let pool = AdaptivePool::new(
        MapeConfig::new(2, 16),
        Arc::new(move || {
            (
                probe_wait.load(Ordering::Relaxed) as f64 / 1e6,
                probe_bytes.load(Ordering::Relaxed) as f64 / 1024.0,
            )
        }),
    );
    let concurrent = Arc::new(AtomicU64::new(0));
    pool.stage_started(Some(500));
    for _ in 0..400 {
        let wait_us = Arc::clone(&wait_us);
        let bytes_kb = Arc::clone(&bytes_kb);
        let concurrent = Arc::clone(&concurrent);
        pool.submit(move || {
            let users = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            let over = users.saturating_sub(5);
            let delay = 1_500 + over * over * 600;
            std::thread::sleep(std::time::Duration::from_micros(delay));
            // Credit the synthetic wait at 4x the slept time. The scale is
            // neutral to the hill climb (the analyzer compares ζ ratios
            // across intervals, and a uniform factor cancels), but it keeps
            // the measured I/O-wait fraction clear of the controller's
            // min_io_fraction floor — crediting only the real sleep puts the
            // fraction within scheduler jitter of 0.25, where a slow run
            // trips the low-I/O jump-to-c_max path and the test flakes.
            wait_us.fetch_add(delay * 4, Ordering::Relaxed);
            bytes_kb.fetch_add(20_480, Ordering::Relaxed);
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
    }
    pool.shutdown();
    assert!(
        pool.current_threads() < 16,
        "contention should prevent settling at max (got {})",
        pool.current_threads()
    );
}
