//! Same-seed reruns must be bit-identical under the virtual-time kernel.
//!
//! The cumulative-service rewrite of `sae-sim` changes the arithmetic by
//! which flow completions are computed (one shared integral instead of a
//! per-flow sweep), so these tests pin the property the rest of the stack
//! relies on: a run is a pure function of (config, workload, policy), down
//! to the last bit. The comparison goes through `{:?}` formatting, which
//! for `f64` is the shortest round-trip representation and therefore
//! injective — two reports with equal debug strings are bit-equal.
//!
//! A chaos-plan counterpart lives in `tests/chaos.rs`
//! (`same_seed_chaos_reruns_are_bit_identical`).

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig};
use sae::workloads::WorkloadKind;

fn rerun_bit_identical(kind: WorkloadKind, policy: fn(&EngineConfig) -> ThreadPolicy) {
    let w = kind.build_scaled(0.25);
    let cfg = EngineConfig::four_node_hdd();
    let policy = policy(&cfg);
    let engine = Engine::new(w.configure(cfg), policy);
    let a = engine.run(&w.job);
    let b = engine.run(&w.job);
    assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "same-seed reruns diverged for {kind:?}"
    );
}

#[test]
fn terasort_default_rerun_is_bit_identical() {
    rerun_bit_identical(WorkloadKind::Terasort, |_| ThreadPolicy::Default);
}

#[test]
fn pagerank_adaptive_rerun_is_bit_identical() {
    rerun_bit_identical(WorkloadKind::PageRank, |cfg| cfg.adaptive_policy());
}

/// The decision journal rides on the same determinism guarantee: the
/// JSONL artifact of an adaptive run — ζ values, ε measurements and all,
/// serialized through `{:?}` shortest-round-trip floats — is byte-equal
/// across same-seed reruns, and non-trivial (the adaptive policy must
/// actually journal decisions).
#[test]
fn terasort_adaptive_journal_jsonl_is_bit_identical() {
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let cfg = EngineConfig::four_node_hdd();
    let policy = cfg.adaptive_policy();
    let engine = Engine::new(w.configure(cfg), policy);
    let a = engine.run(&w.job).decision_journal_jsonl();
    let b = engine.run(&w.job).decision_journal_jsonl();
    assert!(!a.is_empty(), "adaptive run journaled nothing");
    assert!(a.lines().count() >= 2, "journal suspiciously small:\n{a}");
    assert_eq!(a.as_bytes(), b.as_bytes(), "journal JSONL diverged");
    // And the artifact parses back to the same records it came from.
    let records = sae::core::parse_jsonl(&a).expect("journal JSONL parses");
    assert_eq!(sae::core::to_jsonl(&records), a);
}
