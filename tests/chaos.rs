//! Chaos testing: a seeded fault plan with executor crashes and transient
//! task failures must never change *whether* a job completes, only how
//! long it takes — and reruns with the same seed must be bit-identical.

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig, FaultPlan};
use sae::workloads::WorkloadKind;

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(1234)
        .with_crash(1, 40.0, 25.0)
        .with_crash(3, 85.0, 15.0)
        .with_task_failures(0.02)
}

#[test]
fn terasort_survives_crashes_and_transient_failures() {
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.fault_plan = Some(chaos_plan());
    let (report, trace) = Engine::new(w.configure(cfg), ThreadPolicy::Default)
        .try_run_traced(&w.job)
        .expect("retries and re-registration must absorb the chaos plan");

    assert_eq!(report.stages.len(), w.job.stages.len());
    // Every task is accounted exactly once per stage despite reruns.
    for stage in &report.stages {
        assert_eq!(
            stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
            stage.tasks,
            "task accounting broken in stage {}",
            stage.stage_id
        );
    }
    // Lost and transiently failed work shows up as extra attempts…
    assert!(report.total_failed_attempts() > 0, "no faults fired");
    assert!(report.total_attempts() > report.stages.iter().map(|s| s.tasks).sum::<usize>());
    // …and the trace shows reruns (attempt index > 0) for those tasks.
    assert!(!trace.retried_tasks().is_empty());
    assert_eq!(trace.failed_attempts(), report.total_failed_attempts());
}

#[test]
fn same_seed_chaos_reruns_are_bit_identical() {
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.fault_plan = Some(chaos_plan());
    let engine = Engine::new(w.configure(cfg), ThreadPolicy::Default);
    let a = engine.try_run(&w.job).expect("first run completes");
    let b = engine.try_run(&w.job).expect("second run completes");
    assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
    assert_eq!(a.total_attempts(), b.total_attempts());
    assert_eq!(a.total_failed_attempts(), b.total_failed_attempts());
    for (x, y) in a.stages.iter().zip(&b.stages) {
        assert_eq!(x.duration.to_bits(), y.duration.to_bits());
        assert_eq!(x.disk_read_mb.to_bits(), y.disk_read_mb.to_bits());
        assert_eq!(x.disk_write_mb.to_bits(), y.disk_write_mb.to_bits());
        assert_eq!(x.shuffle_mb.to_bits(), y.shuffle_mb.to_bits());
        assert_eq!(x.attempts, y.attempts);
    }
}

#[test]
fn adaptive_policy_converges_despite_chaos() {
    let w = WorkloadKind::Terasort.build_scaled(0.25);
    let clean_cfg = EngineConfig::four_node_hdd();
    let clean =
        Engine::new(w.configure(clean_cfg.clone()), clean_cfg.adaptive_policy()).run(&w.job);
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.fault_plan = Some(chaos_plan());
    let chaotic = Engine::new(w.configure(cfg.clone()), cfg.adaptive_policy())
        .try_run(&w.job)
        .expect("adaptive run completes under chaos");
    // Interval poisoning keeps the knowledge base clean, so the chaotic run
    // must still land within one doubling of the fault-free setpoints.
    for (clean_stage, chaos_stage) in clean.stages.iter().zip(&chaotic.stages) {
        let a = clean_stage.threads_used as f64;
        let b = chaos_stage.threads_used as f64;
        assert!(
            b >= a / 2.0 && b <= a * 2.0,
            "stage {} diverged: {} threads fault-free vs {} under chaos",
            clean_stage.stage_id,
            clean_stage.threads_used,
            chaos_stage.threads_used
        );
    }
}
